//! The cross-design differential oracle.
//!
//! Table 2's five MMU designs are five *timing* models of the same
//! architecture: whatever they cost in cycles, they must agree on every
//! architectural outcome. This harness generates random access streams
//! with synonyms (same-process aliases and cross-process shared
//! mappings), homonyms (two processes reusing the same virtual
//! addresses), TLB shootdowns (`munmap` and `mprotect`), and CPU
//! coherence probes, replays each stream through every preset with
//! paranoid checking enabled, and asserts that all designs produce:
//!
//! * the identical per-access fault sequence, and
//! * the identical final write-back state (the set of dirty physical
//!   lines), which must equal the trace's own ground truth.
//!
//! Traces are constructed so no design ever writes back to DRAM (writes
//! go only to small private regions that are never unmapped, probed, or
//! reprotected; synonym and doomed regions are read-only), so the dirty
//! resident lines *are* the final memory image and can be compared
//! exactly.

use gvc::{AccessFault, LineAccess, MemorySystem, SystemConfig};
use gvc_engine::Cycle;
use gvc_mem::{OsLite, Perms, ProcessId, VRange, Vpn, PAGES_PER_LARGE, PAGE_BYTES};
use gvc_soc::{Probe, ProbeKind};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One step of a generated trace, already resolved against the fixed
/// region layout below (kind, page, line, cu).
type RawOp = (u8, u64, u64, u8);

const PRIV_PAGES: u64 = 8;
const RO_PAGES: u64 = 4;
const DOOMED_PAGES: u64 = 2;
const PROT_PAGES: u64 = 2;

/// The fixed memory layout every trace runs against. Rebuilt from
/// scratch per design so `munmap`/`mprotect` effects cannot leak.
struct World {
    os: OsLite,
    p0: ProcessId,
    p1: ProcessId,
    /// Private read-write regions — the only write targets. `priv0` and
    /// `priv1` start at the same virtual address in different address
    /// spaces: true homonyms.
    priv0: VRange,
    priv1: VRange,
    /// Read-only region plus a same-process alias and a cross-process
    /// shared mapping of it (synonyms).
    ro: VRange,
    ro_alias: VRange,
    ro_shared: VRange,
    /// Read-only region a trace event may unmap.
    doomed: VRange,
    /// Read-write region a trace event may downgrade to read-only;
    /// never written while writable.
    prot: VRange,
}

impl World {
    fn build() -> Self {
        let mut os = OsLite::new(256 << 20);
        let p0 = os.create_process();
        let p1 = os.create_process();
        let priv0 = os
            .mmap(p0, PRIV_PAGES * PAGE_BYTES, Perms::READ_WRITE)
            .unwrap();
        let priv1 = os
            .mmap(p1, PRIV_PAGES * PAGE_BYTES, Perms::READ_WRITE)
            .unwrap();
        assert_eq!(
            priv0.start(),
            priv1.start(),
            "layout must produce true homonyms"
        );
        let ro = os
            .mmap(p0, RO_PAGES * PAGE_BYTES, Perms::READ_ONLY)
            .unwrap();
        let ro_alias = os.mmap_alias(p0, ro).unwrap();
        let ro_shared = os.mmap_shared(p1, p0, ro).unwrap();
        let doomed = os
            .mmap(p0, DOOMED_PAGES * PAGE_BYTES, Perms::READ_ONLY)
            .unwrap();
        let prot = os
            .mmap(p0, PROT_PAGES * PAGE_BYTES, Perms::READ_WRITE)
            .unwrap();
        World {
            os,
            p0,
            p1,
            priv0,
            priv1,
            ro,
            ro_alias,
            ro_shared,
            doomed,
            prot,
        }
    }
}

/// The architectural outcome of one replay.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    faults: Vec<Option<AccessFault>>,
    dirty: BTreeSet<u64>,
    dram_writes: u64,
}

/// Replays `ops` through one design. Returns the outcome plus the
/// trace's own ground truth of written physical lines (identical for
/// every design because the layout is rebuilt identically).
fn replay(cfg: SystemConfig, ops: &[RawOp]) -> (Outcome, BTreeSet<u64>) {
    let mut w = World::build();
    let mut mem = MemorySystem::new(cfg.with_paranoid());
    let mut t = Cycle::ZERO;
    let mut faults = Vec::with_capacity(ops.len());
    let mut expected_written = BTreeSet::new();
    let mut doomed_gone = false;
    let mut prot_ro = false;

    for &(kind, page, line, cu) in ops {
        let cu = cu as usize % 16;
        let off = |pages: u64| (page % pages) * PAGE_BYTES + (line % 32) * 128;
        let access = |mem: &mut MemorySystem, t: &mut Cycle, pid: ProcessId, va, is_write| {
            let r = mem.access(
                LineAccess {
                    cu,
                    asid: pid.asid(),
                    vaddr: va,
                    is_write,
                    at: *t,
                },
                &w.os,
            );
            *t = r.done_at;
            r.fault
        };
        match kind {
            // Reads and writes to the private homonym regions — the
            // only writes any trace performs.
            0 | 1 => {
                let (pid, region) = if kind == 0 {
                    (w.p0, w.priv0)
                } else {
                    (w.p1, w.priv1)
                };
                let va = region.addr_at(off(PRIV_PAGES));
                let is_write = line % 2 == 0;
                if is_write {
                    let (pa, _) = w.os.translate(pid, va).unwrap();
                    expected_written.insert(pa.line_index());
                }
                faults.push(access(&mut mem, &mut t, pid, va, is_write));
            }
            // Synonym reads: the same physical page through its leading
            // name, a same-process alias, or another process's shared
            // mapping.
            2 => {
                let (pid, region) = match line % 3 {
                    0 => (w.p0, w.ro),
                    1 => (w.p0, w.ro_alias),
                    _ => (w.p1, w.ro_shared),
                };
                let va = region.addr_at(off(RO_PAGES));
                faults.push(access(&mut mem, &mut t, pid, va, false));
            }
            // Doomed region: reads fault uniformly once it is unmapped.
            3 => {
                let va = w.doomed.addr_at(off(DOOMED_PAGES));
                let fault = access(&mut mem, &mut t, w.p0, va, false);
                if doomed_gone {
                    assert_eq!(fault, Some(AccessFault::PageFault));
                }
                faults.push(fault);
            }
            // Protected region: reads while writable, write attempts
            // (uniform PermissionDenied) once downgraded.
            4 => {
                let va = w.prot.addr_at(off(PROT_PAGES));
                let fault = access(&mut mem, &mut t, w.p0, va, prot_ro);
                if prot_ro {
                    assert_eq!(fault, Some(AccessFault::PermissionDenied));
                }
                faults.push(fault);
            }
            // OS / coherence events.
            _ => match line % 3 {
                0 if !doomed_gone => {
                    doomed_gone = true;
                    let sd = w.os.munmap(w.p0, w.doomed).unwrap();
                    t = t.max(mem.apply_shootdown(&sd, t));
                }
                1 if !prot_ro => {
                    prot_ro = true;
                    let sd = w.os.mprotect(w.p0, w.prot, Perms::READ_ONLY).unwrap();
                    t = t.max(mem.apply_shootdown(&sd, t));
                }
                _ => {
                    // Probe a read-only physical page: clean data, so
                    // invalidation never writes back in any design.
                    let va = w.ro.addr_at((page % RO_PAGES) * PAGE_BYTES);
                    let (pa, _) = w.os.translate(w.p0, va).unwrap();
                    let resp = mem.handle_probe(Probe {
                        paddr: pa,
                        kind: ProbeKind::Invalidate,
                        at: t,
                    });
                    t = t.max(resp.done_at);
                }
            },
        }
    }

    mem.check_invariants();
    let dirty = mem.dirty_physical_lines();
    let report = mem.finish(t);
    (
        Outcome {
            faults,
            dirty,
            dram_writes: report.dram_writes,
        },
        expected_written,
    )
}

fn presets() -> [(&'static str, SystemConfig); 7] {
    [
        ("IDEAL MMU", SystemConfig::ideal_mmu()),
        ("Baseline 512", SystemConfig::baseline_512()),
        ("Baseline 16K", SystemConfig::baseline_16k()),
        ("VC Without OPT", SystemConfig::vc_without_opt()),
        ("VC With OPT", SystemConfig::vc_with_opt()),
        ("Huge 2M", SystemConfig::huge()),
        ("Coalesced", SystemConfig::coalesced()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// All Table 2 designs — plus the huge-page and coalescing reach
    /// extensions — agree on every architectural outcome of a
    /// randomized trace, and their final write-back state matches the
    /// trace's ground truth.
    #[test]
    fn designs_agree_on_architectural_state(
        ops in prop::collection::vec((0u8..6, 0u64..8, 0u64..96, 0u8..16), 1..160)
    ) {
        let mut reference: Option<(Outcome, BTreeSet<u64>)> = None;
        for (name, cfg) in presets() {
            let (outcome, expected) = replay(cfg, &ops);
            prop_assert_eq!(
                outcome.dram_writes, 0,
                "{}: trace must stay small enough to never write back", name
            );
            prop_assert_eq!(
                &outcome.dirty, &expected,
                "{}: final dirty lines != lines the trace wrote", name
            );
            if let Some((ref first, _)) = reference {
                prop_assert_eq!(
                    &outcome.faults, &first.faults,
                    "{}: fault sequence diverged from {}", name, presets()[0].0
                );
                prop_assert_eq!(
                    &outcome.dirty, &first.dirty,
                    "{}: write-back state diverged from {}", name, presets()[0].0
                );
            } else {
                reference = Some((outcome, expected));
            }
        }
    }
}

const LP_PRIV_PAGES: u64 = 4;
const LP_ADJ_PAGES: u64 = 4;

/// The large-page layout: two virtually contiguous 2 MB mappings (so
/// a synonym alias can straddle the internal 2 MB boundary), a 4 KB
/// region right after them, a doomed 2 MB mapping a trace event may
/// `munmap_large`, and small private write targets in both processes.
struct LargeWorld {
    os: OsLite,
    p0: ProcessId,
    p1: ProcessId,
    priv0: VRange,
    priv1: VRange,
    /// Two large pages, virtually contiguous, read-only.
    huge: VRange,
    /// 4 KB synonym of the four pages straddling the boundary between
    /// the two large pages.
    straddle_alias: VRange,
    /// 4 KB read-only pages following the huge region (a trace event
    /// may remap one, proving 4 KB shootdowns adjacent to large
    /// mappings stay exact).
    adj: VRange,
    /// One large page unmapped mid-trace.
    doomed: VRange,
}

impl LargeWorld {
    fn build() -> Self {
        let mut os = OsLite::new(256 << 20);
        let p0 = os.create_process();
        let p1 = os.create_process();
        let priv0 = os
            .mmap(p0, LP_PRIV_PAGES * PAGE_BYTES, Perms::READ_WRITE)
            .unwrap();
        let priv1 = os
            .mmap(p1, LP_PRIV_PAGES * PAGE_BYTES, Perms::READ_WRITE)
            .unwrap();
        let huge = os.mmap_large(p0, 2, Perms::READ_ONLY).unwrap();
        let straddle_src = VRange::new(
            huge.addr_at((PAGES_PER_LARGE - 2) * PAGE_BYTES),
            4 * PAGE_BYTES,
        );
        let straddle_alias = os.mmap_alias(p0, straddle_src).unwrap();
        let adj = os
            .mmap(p0, LP_ADJ_PAGES * PAGE_BYTES, Perms::READ_ONLY)
            .unwrap();
        let doomed = os.mmap_large(p0, 1, Perms::READ_ONLY).unwrap();
        LargeWorld {
            os,
            p0,
            p1,
            priv0,
            priv1,
            huge,
            straddle_alias,
            adj,
            doomed,
        }
    }
}

/// Replays `ops` against the large-page layout through one design.
/// Same contract as [`replay`]: returns the outcome plus the trace's
/// ground truth of written physical lines.
fn replay_large(cfg: SystemConfig, ops: &[RawOp]) -> (Outcome, BTreeSet<u64>) {
    let mut w = LargeWorld::build();
    let mut mem = MemorySystem::new(cfg.with_paranoid());
    let mut t = Cycle::ZERO;
    let mut faults = Vec::with_capacity(ops.len());
    let mut expected_written = BTreeSet::new();
    let mut doomed_gone = false;
    let mut adj_remapped = false;

    for &(kind, page, line, cu) in ops {
        let cu = cu as usize % 16;
        let off = |pages: u64| (page % pages) * PAGE_BYTES + (line % 32) * 128;
        let access = |mem: &mut MemorySystem, t: &mut Cycle, pid: ProcessId, va, is_write| {
            let r = mem.access(
                LineAccess {
                    cu,
                    asid: pid.asid(),
                    vaddr: va,
                    is_write,
                    at: *t,
                },
                &w.os,
            );
            *t = r.done_at;
            r.fault
        };
        match kind {
            // Reads and writes to the private homonym regions — the
            // only writes any trace performs.
            0 | 1 => {
                let (pid, region) = if kind == 0 {
                    (w.p0, w.priv0)
                } else {
                    (w.p1, w.priv1)
                };
                let va = region.addr_at(off(LP_PRIV_PAGES));
                let is_write = line % 2 == 0;
                if is_write {
                    let (pa, _) = w.os.translate(pid, va).unwrap();
                    expected_written.insert(pa.line_index());
                }
                faults.push(access(&mut mem, &mut t, pid, va, is_write));
            }
            // Synonym reads around the internal 2 MB boundary: through
            // the large mapping itself, through the straddling 4 KB
            // alias, or anywhere in the huge region.
            2 => {
                let va = match line % 3 {
                    0 => w
                        .huge
                        .addr_at((PAGES_PER_LARGE - 2 + page % 4) * PAGE_BYTES + (line % 32) * 128),
                    1 => w.straddle_alias.addr_at(off(4)),
                    _ => w.huge.addr_at(off(2 * PAGES_PER_LARGE)),
                };
                faults.push(access(&mut mem, &mut t, w.p0, va, false));
            }
            // Doomed large page: reads fault uniformly once it is
            // unmapped at 2 MB grain.
            3 => {
                let va = w.doomed.addr_at(off(PAGES_PER_LARGE));
                let fault = access(&mut mem, &mut t, w.p0, va, false);
                if doomed_gone {
                    assert_eq!(fault, Some(AccessFault::PageFault));
                }
                faults.push(fault);
            }
            // 4 KB pages adjacent to the large mappings: never fault,
            // before or after one of them is remapped.
            4 => {
                let va = w.adj.addr_at(off(LP_ADJ_PAGES));
                faults.push(access(&mut mem, &mut t, w.p0, va, false));
            }
            // OS / coherence events.
            _ => match line % 3 {
                0 if !doomed_gone => {
                    doomed_gone = true;
                    let sd = w.os.munmap_large(w.p0, w.doomed.start().vpn()).unwrap();
                    t = t.max(mem.apply_shootdown(&sd, t));
                }
                1 if !adj_remapped => {
                    adj_remapped = true;
                    let vpn = Vpn::new(w.adj.start().vpn().raw() + 1);
                    let sd = w.os.remap_page(w.p0, vpn).unwrap();
                    t = t.max(mem.apply_shootdown(&sd, t));
                }
                _ => {
                    // Probe a read-only large-mapped page: clean data,
                    // so invalidation never writes back in any design.
                    let va = w.huge.addr_at((page % (2 * PAGES_PER_LARGE)) * PAGE_BYTES);
                    let (pa, _) = w.os.translate(w.p0, va).unwrap();
                    let resp = mem.handle_probe(Probe {
                        paddr: pa,
                        kind: ProbeKind::Invalidate,
                        at: t,
                    });
                    t = t.max(resp.done_at);
                }
            },
        }
    }

    mem.check_invariants();
    let dirty = mem.dirty_physical_lines();
    let report = mem.finish(t);
    (
        Outcome {
            faults,
            dirty,
            dram_writes: report.dram_writes,
        },
        expected_written,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Every design agrees on every architectural outcome of a
    /// randomized trace over the large-page layout: 2 MB mappings,
    /// synonyms straddling a 2 MB boundary, a mid-trace 2 MB unmap,
    /// and a 4 KB remap adjacent to the large mappings.
    #[test]
    fn designs_agree_on_large_page_traces(
        ops in prop::collection::vec((0u8..6, 0u64..1024, 0u64..96, 0u8..16), 1..160)
    ) {
        let mut reference: Option<Outcome> = None;
        for (name, cfg) in presets() {
            let (outcome, expected) = replay_large(cfg, &ops);
            prop_assert_eq!(
                outcome.dram_writes, 0,
                "{}: trace must stay small enough to never write back", name
            );
            prop_assert_eq!(
                &outcome.dirty, &expected,
                "{}: final dirty lines != lines the trace wrote", name
            );
            if let Some(ref first) = reference {
                prop_assert_eq!(
                    &outcome.faults, &first.faults,
                    "{}: fault sequence diverged from {}", name, presets()[0].0
                );
                prop_assert_eq!(
                    &outcome.dirty, &first.dirty,
                    "{}: write-back state diverged from {}", name, presets()[0].0
                );
            } else {
                reference = Some(outcome);
            }
        }
    }
}

/// A deterministic large-page smoke trace exercising every op kind,
/// so the oracle path itself is covered even with `PROPTEST_CASES=0`.
#[test]
fn large_page_oracle_smoke_trace_agrees() {
    let ops: Vec<RawOp> = (0u16..192)
        .map(|i| {
            (
                (i % 6) as u8,
                (i as u64 * 37) % 1024,
                (i as u64 * 7) % 96,
                (i % 16) as u8,
            )
        })
        .collect();
    let mut dirty: Option<BTreeSet<u64>> = None;
    for (_, cfg) in presets() {
        let (outcome, expected) = replay_large(cfg, &ops);
        assert_eq!(outcome.dram_writes, 0);
        assert_eq!(outcome.dirty, expected);
        if let Some(d) = &dirty {
            assert_eq!(&outcome.dirty, d);
        } else {
            assert!(
                !outcome.dirty.is_empty(),
                "smoke trace must write something"
            );
            dirty = Some(outcome.dirty);
        }
    }
}

/// Destroying a process that owns 2 MB mappings must leave no residue
/// at any grain: warms every level (including the reach sub-arrays,
/// on designs that have them) with large-mapped translations, evicts,
/// respawns under the recycled ASID, and asserts the dead mappings
/// are unreachable. Uniform across every preset.
#[test]
fn evict_respawn_with_huge_pages_is_residue_free() {
    let mut reference: Option<Vec<Option<AccessFault>>> = None;
    for (name, cfg) in presets() {
        let mut os = OsLite::new(256 << 20);
        let p0 = os.create_process();
        let p1 = os.create_process();
        // Pad the space so the large mappings sit above the base the
        // respawned process will allocate from: the dead VAs below
        // must stay unmapped in the reborn space.
        let _pad = os.mmap(p0, PAGE_BYTES, Perms::READ_ONLY).unwrap();
        let huge = os.mmap_large(p0, 2, Perms::READ_ONLY).unwrap();
        let bystander = os.mmap(p1, 4 * PAGE_BYTES, Perms::READ_WRITE).unwrap();
        let mut mem = MemorySystem::new(cfg.with_paranoid());
        let mut t = Cycle::ZERO;
        // Warm per-CU TLBs, the IOMMU, and any reach arrays with the
        // victim's large-mapped translations plus the bystander's.
        for i in 0..64u64 {
            let (pid, va) = if i % 3 == 2 {
                (p1, bystander.addr_at((i * 128) % bystander.bytes()))
            } else {
                (p0, huge.addr_at((i * 37 * PAGE_BYTES) % huge.bytes()))
            };
            let r = mem.access(
                LineAccess {
                    cu: (i % 4) as usize,
                    asid: pid.asid(),
                    vaddr: va,
                    is_write: false,
                    at: t,
                },
                &os,
            );
            assert_eq!(r.fault, None, "{name}: warmup access faulted");
            t = r.done_at;
        }
        let victim_asid = p0.asid();
        let sd = os.destroy_process(p0).unwrap();
        t = t.max(mem.apply_shootdown(&sd, t));
        mem.assert_no_asid_residue(victim_asid);

        let reborn = os.try_create_process().unwrap();
        assert_eq!(reborn.asid(), victim_asid, "eviction must recycle the ASID");
        let fresh = os.mmap(reborn, 4 * PAGE_BYTES, Perms::READ_WRITE).unwrap();
        let mut faults = Vec::new();
        // The dead 2 MB mappings must fault under the recycled ASID —
        // a stale reach entry would let an entire block "hit".
        for i in 0..4u64 {
            let r = mem.access(
                LineAccess {
                    cu: i as usize % 4,
                    asid: reborn.asid(),
                    vaddr: huge.addr_at(i * (PAGES_PER_LARGE / 2) * PAGE_BYTES),
                    is_write: false,
                    at: t,
                },
                &os,
            );
            assert_eq!(
                r.fault,
                Some(AccessFault::PageFault),
                "{name}: respawned tenant resolved a dead large mapping"
            );
            faults.push(r.fault);
            t = r.done_at;
        }
        for i in 0..8u64 {
            let r = mem.access(
                LineAccess {
                    cu: (i % 4) as usize,
                    asid: reborn.asid(),
                    vaddr: fresh.addr_at((i * 128) % fresh.bytes()),
                    is_write: i % 4 == 1,
                    at: t,
                },
                &os,
            );
            assert_eq!(r.fault, None, "{name}: fresh mapping must be usable");
            faults.push(r.fault);
            t = r.done_at;
        }
        let r = mem.access(
            LineAccess {
                cu: 0,
                asid: p1.asid(),
                vaddr: bystander.addr_at(0),
                is_write: false,
                at: t,
            },
            &os,
        );
        assert_eq!(r.fault, None, "{name}: bystander must survive the eviction");
        faults.push(r.fault);
        t = r.done_at;
        mem.check_invariants();
        mem.finish(t);
        if let Some(first) = &reference {
            assert_eq!(
                &faults, first,
                "{name}: large-page evict/respawn fault pattern diverged"
            );
        } else {
            reference = Some(faults);
        }
    }
}

/// Tenant eviction must leave no residue: replays traffic for a tenant,
/// destroys its process (full shootdown), respawns it under the
/// *recycled* ASID, and asserts the respawned tenant observes zero
/// stale state on one design. Returns the respawned tenant's fault
/// pattern and the hierarchy's dirty lines for cross-design comparison.
fn replay_evict_respawn(cfg: SystemConfig) -> (Vec<Option<AccessFault>>, BTreeSet<u64>) {
    let mut w = World::build();
    let mut mem = MemorySystem::new(cfg.with_paranoid());
    let mut t = Cycle::ZERO;

    // Warm every level with the victim's translations and lines (mixed
    // CUs so per-CU TLBs, L1s, and filters all hold its state), plus a
    // bystander's, so the shootdown has real residue to miss.
    for i in 0..48u64 {
        let (pid, region) = if i % 3 == 2 {
            (w.p1, w.priv1)
        } else {
            (w.p0, w.priv0)
        };
        let r = mem.access(
            LineAccess {
                cu: (i % 4) as usize,
                asid: pid.asid(),
                vaddr: region.addr_at((i * 128) % region.bytes()),
                is_write: i % 4 == 1 && region == w.priv0,
                at: t,
            },
            &w.os,
        );
        assert_eq!(r.fault, None);
        t = r.done_at;
    }
    let old_ro = w.ro;
    let victim_asid = w.p0.asid();

    // Evict: destroy + full shootdown; nothing tagged with the dead
    // ASID may survive anywhere in the hierarchy.
    let sd = w.os.destroy_process(w.p0).unwrap();
    t = t.max(mem.apply_shootdown(&sd, t));
    mem.assert_no_asid_residue(victim_asid);

    // Respawn: LIFO recycling hands back the same ASID — exactly the
    // identity under which any stale translation or line would leak.
    let reborn = w.os.try_create_process().unwrap();
    assert_eq!(reborn.asid(), victim_asid, "eviction must recycle the ASID");
    let fresh =
        w.os.mmap(reborn, 4 * PAGE_BYTES, Perms::READ_WRITE)
            .unwrap();

    let mut faults = Vec::new();
    // The old process's regions are gone: accesses under the recycled
    // ASID must fault (a stale TLB/FBT entry would let them "hit").
    for page in 0..2u64 {
        let r = mem.access(
            LineAccess {
                cu: page as usize % 4,
                asid: reborn.asid(),
                vaddr: old_ro.addr_at(page * PAGE_BYTES),
                is_write: false,
                at: t,
            },
            &w.os,
        );
        assert_eq!(
            r.fault,
            Some(AccessFault::PageFault),
            "respawned tenant resolved a dead mapping — stale translation"
        );
        faults.push(r.fault);
        t = r.done_at;
    }
    // The fresh region works normally, and the bystander is untouched.
    for i in 0..16u64 {
        let r = mem.access(
            LineAccess {
                cu: (i % 4) as usize,
                asid: reborn.asid(),
                vaddr: fresh.addr_at((i * 128) % fresh.bytes()),
                is_write: i % 4 == 1,
                at: t,
            },
            &w.os,
        );
        assert_eq!(r.fault, None, "fresh mapping must be usable");
        faults.push(r.fault);
        t = r.done_at;
    }
    let r = mem.access(
        LineAccess {
            cu: 0,
            asid: w.p1.asid(),
            vaddr: w.priv1.addr_at(0),
            is_write: false,
            at: t,
        },
        &w.os,
    );
    assert_eq!(r.fault, None, "bystander must survive the eviction");
    faults.push(r.fault);
    t = r.done_at;

    mem.check_invariants();
    let dirty = mem.dirty_physical_lines();
    mem.finish(t);
    (faults, dirty)
}

/// Evict-then-respawn-same-ASID leaves zero stale translations or
/// lines, uniformly across every preset.
#[test]
fn evict_respawn_same_asid_is_residue_free_on_all_presets() {
    let mut reference: Option<Vec<Option<AccessFault>>> = None;
    for (name, cfg) in presets() {
        let (faults, _) = replay_evict_respawn(cfg);
        if let Some(first) = &reference {
            assert_eq!(
                &faults, first,
                "{name}: evict/respawn fault pattern diverged across designs"
            );
        } else {
            reference = Some(faults);
        }
    }
}

/// A deterministic smoke trace exercising every op kind, so the oracle
/// path itself is covered even with `PROPTEST_CASES=0`.
#[test]
fn oracle_smoke_trace_agrees() {
    let ops: Vec<RawOp> = (0u8..96)
        .map(|i| (i % 6, i as u64 / 6 % 8, (i as u64 * 7) % 96, i % 16))
        .collect();
    let mut dirty: Option<BTreeSet<u64>> = None;
    for (_, cfg) in presets() {
        let (outcome, expected) = replay(cfg, &ops);
        assert_eq!(outcome.dram_writes, 0);
        assert_eq!(outcome.dirty, expected);
        if let Some(d) = &dirty {
            assert_eq!(&outcome.dirty, d);
        } else {
            assert!(
                !outcome.dirty.is_empty(),
                "smoke trace must write something"
            );
            dirty = Some(outcome.dirty);
        }
    }
}
