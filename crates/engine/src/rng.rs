//! Deterministic random numbers for workload generation.
//!
//! Every stochastic choice in the workspace (graph generation, address
//! layout randomization, probe injection) flows through [`SimRng`], a
//! self-contained xoshiro256++ generator seeded through SplitMix64.
//! Simulations with the same seed are bit-for-bit reproducible on any
//! platform — the generator has no dependency on external crates or
//! process state, which is what lets the benchmark harness promise
//! byte-identical output regardless of how many worker threads run
//! the sweep.

use serde::{Deserialize, Serialize};

/// A seeded, deterministic random-number generator (xoshiro256++).
///
/// ```
/// use gvc_engine::SimRng;
///
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    base_seed: u64,
}

/// The full serializable state of a [`SimRng`] — the four xoshiro256++
/// state words plus the base seed stream derivation keys off of.
/// Checkpoint/restore of a simulation must capture this exactly:
/// restoring it with [`SimRng::from_snapshot`] continues the sequence
/// bit-for-bit where the snapshot was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngSnapshot {
    /// xoshiro256++ state word 0.
    pub s0: u64,
    /// xoshiro256++ state word 1.
    pub s1: u64,
    /// xoshiro256++ state word 2.
    pub s2: u64,
    /// xoshiro256++ state word 3.
    pub s3: u64,
    /// The seed [`SimRng::fork`] derives child streams from.
    pub base_seed: u64,
}

/// One SplitMix64 step; used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // Expand the seed through SplitMix64, as xoshiro's authors
        // recommend, so low-entropy seeds still fill all 256 state
        // bits.
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng {
            state,
            base_seed: seed,
        }
    }

    /// Derives an independent child generator; children with different
    /// `stream` values produce independent sequences.
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the stream id through SplitMix64 so nearby ids decorrelate.
        let mut z = stream;
        let mixed = splitmix64(&mut z);
        SimRng::seeded(self.base_seed.wrapping_add(mixed))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Lemire's multiply-shift with rejection: unbiased for every
        // bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = x as u128 * bound as u128;
            if (m as u64) < threshold {
                continue;
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard [0, 1) dyadic lattice.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Captures the generator's full state for checkpointing.
    pub fn snapshot(&self) -> RngSnapshot {
        RngSnapshot {
            s0: self.state[0],
            s1: self.state[1],
            s2: self.state[2],
            s3: self.state[3],
            base_seed: self.base_seed,
        }
    }

    /// Rebuilds a generator from a snapshot; the restored generator
    /// continues the original's sequence bit-for-bit.
    pub fn from_snapshot(s: RngSnapshot) -> Self {
        SimRng {
            state: [s.s0, s.s1, s.s2, s.s3],
            base_seed: s.base_seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seeded(123);
        let mut b = SimRng::seeded(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let base = SimRng::seeded(9);
        let mut f1a = base.fork(1);
        let mut f1b = base.fork(1);
        let mut f2 = base.fork(2);
        assert_eq!(f1a.next_u64(), f1b.next_u64());
        assert_ne!(f1a.next_u64(), f2.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SimRng::seeded(5);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seeded(1);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_and_chance() {
        let mut r = SimRng::seeded(2);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
        let mut hits = 0;
        for _ in 0..10_000 {
            if r.chance(0.5) {
                hits += 1;
            }
        }
        assert!((4000..6000).contains(&hits));
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = SimRng::seeded(11);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn snapshot_restore_continues_the_sequence() {
        let mut r = SimRng::seeded(99);
        for _ in 0..17 {
            r.next_u64();
        }
        let snap = r.snapshot();
        let mut restored = SimRng::from_snapshot(snap);
        for _ in 0..64 {
            assert_eq!(r.next_u64(), restored.next_u64());
        }
        // Forks derive from base_seed, which the snapshot preserves.
        assert_eq!(
            r.fork(5).next_u64(),
            SimRng::from_snapshot(snap).fork(5).next_u64()
        );
        // Snapshot of the restored generator is a fixed point.
        let mut again = SimRng::from_snapshot(snap);
        assert_eq!(again.snapshot(), snap);
        again.next_u64();
        assert_ne!(again.snapshot(), snap, "advancing must change the state");
    }

    #[test]
    fn values_look_uniform_across_buckets() {
        let mut r = SimRng::seeded(3);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!(
                (9_000..11_000).contains(&b),
                "bucket count {b} outside 10k ± 1k"
            );
        }
    }
}
