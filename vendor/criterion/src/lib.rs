//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`], `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros (both the
//! positional and the `name/config/targets` forms). Each benchmark
//! runs `sample_size` timed iterations after one warm-up and prints
//! min/median/mean wall-clock times — enough for regression eyeballing
//! without the statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            warmed: false,
        };
        for _ in 0..=self.sample_size {
            f(&mut b);
        }
        b.report(name);
        self
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    warmed: bool,
}

impl Bencher {
    /// Times one iteration of `f` (the first call is an untimed
    /// warm-up).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        if self.warmed {
            self.samples.push(dt);
        } else {
            self.warmed = true;
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<40} min {min:>10.2?}   median {median:>10.2?}   mean {mean:>10.2?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // One warm-up call plus sample_size timed calls.
        assert_eq!(runs, 4);
    }

    criterion_group!(name = smoke; config = Criterion::default().sample_size(2); targets = target);

    fn target(c: &mut Criterion) {
        c.bench_function("smoke_target", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
