//! The baseline physical hierarchy (Figure 1): per-CU TLB → physical
//! L1 → physical shared L2 → directory/DRAM. Every memory request
//! consults the per-CU TLB; every per-CU TLB miss travels to the
//! shared IOMMU TLB, whose 1-access-per-cycle port is the bottleneck
//! the paper measures.

use super::{AccessFault, AccessResult, LineAccess, MemorySystem};
use gvc_cache::cache::MshrOutcome;
use gvc_cache::LineKey;
use gvc_engine::time::{Cycle, Duration};
use gvc_engine::TraceCause;
use gvc_mem::{OsLite, Perms};

impl MemorySystem {
    pub(super) fn access_baseline(&mut self, a: LineAccess, os: &OsLite) -> AccessResult {
        let vpn = a.vaddr.vpn();
        let (ppn, perms, ready, was_miss) = match self.translate_per_cu(a.cu, a.asid, vpn, a.at, os)
        {
            Ok(ok) => ok,
            Err((done, fault)) => return AccessResult::fault(done, fault),
        };
        if !perms.covers(Perms::required_for_write(a.is_write)) {
            self.counters.perm_faults.inc();
            return AccessResult::fault(ready, AccessFault::PermissionDenied);
        }
        let key = Self::phys_key(ppn, a.vaddr);
        if was_miss {
            self.classify_tlb_miss(a.cu, key);
        }
        if a.is_write {
            self.write_physical(a.cu, key, ready);
            AccessResult::ok(a.at + Duration::new(self.cfg.lat.write_ack))
        } else {
            AccessResult::ok(self.read_physical(a.cu, key, ready, Perms::READ_WRITE, key))
        }
    }

    /// Figure 2's breakdown: where does a TLB-missing access's data
    /// currently live?
    pub(super) fn classify_tlb_miss(&mut self, cu: usize, phys_key: LineKey) {
        if self.l1[cu].peek(phys_key).is_some() {
            self.counters.tlb_miss_data_in_l1.inc();
        } else if self.l2.peek(phys_key).is_some() {
            self.counters.tlb_miss_data_in_l2.inc();
        } else {
            self.counters.tlb_miss_data_in_mem.inc();
        }
    }

    /// A read through a physical L2. `l1_key` is the key under which
    /// the line fills this CU's L1 (virtual in the L1-only design,
    /// equal to `l2_key` in the baseline).
    pub(super) fn read_physical(
        &mut self,
        cu: usize,
        l2_key: LineKey,
        t: Cycle,
        l1_fill_perms: Perms,
        l1_key: LineKey,
    ) -> Cycle {
        let virtual_l1 = l1_key != l2_key;
        // L1 access (the L1-only design already performed it; in that
        // case the caller passes a different key and we skip the L1
        // lookup — the miss already happened).
        if !virtual_l1 {
            let l1_done = t + Duration::new(self.cfg.lat.l1_hit);
            if let Some(line) = self.l1[cu].lookup(l1_key, t) {
                self.tr_stage(TraceCause::L1Lookup, l1_done);
                return match Self::hit_fill_wait(&self.l1_mshr[cu], &line, l1_key, t) {
                    Some(d) => {
                        let done = d.max(l1_done);
                        self.tr_stage(TraceCause::MshrWait, done);
                        done
                    }
                    None => l1_done,
                };
            }
            if let MshrOutcome::Merged { fill_done } = self.l1_mshr[cu].check(l1_key, t) {
                self.tr_stage(TraceCause::MshrWait, fill_done);
                return fill_done;
            }
            self.tr_stage(TraceCause::L1Lookup, l1_done);
        }
        // Shared L2.
        let l2_arrival = t + Duration::new(self.cfg.lat.l1_hit) + self.noc.cu_to_l2();
        self.tr_stage(TraceCause::Noc, l2_arrival);
        let service = self.l2.reserve_port(l2_key, l2_arrival);
        let l2_done = service + Duration::new(self.cfg.lat.l2_hit);
        let data_at_cu = if let Some(line) = self.l2.lookup(l2_key, service) {
            self.tr_stage(TraceCause::L2Lookup, l2_done);
            let ready = match Self::hit_fill_wait(&self.l2_mshr, &line, l2_key, service) {
                Some(d) => {
                    let ready = d.max(l2_done);
                    self.tr_stage(TraceCause::MshrWait, ready);
                    ready
                }
                None => l2_done,
            };
            let at_cu = ready + self.noc.cu_to_l2();
            self.tr_stage(TraceCause::Noc, at_cu);
            at_cu
        } else {
            match self.l2_mshr.check(l2_key, service) {
                MshrOutcome::Merged { fill_done } => {
                    self.tr_stage(TraceCause::L2Lookup, service);
                    self.tr_stage(TraceCause::MshrWait, fill_done);
                    let at_cu = fill_done + self.noc.cu_to_l2();
                    self.tr_stage(TraceCause::Noc, at_cu);
                    at_cu
                }
                MshrOutcome::Primary => {
                    self.tr_stage(TraceCause::L2Lookup, l2_done);
                    let filled = self.fetch_line(l2_done);
                    self.insert_l2_physical(l2_key, false, filled);
                    self.l2_mshr.register(l2_key, filled);
                    let at_cu = filled + self.noc.cu_to_l2();
                    self.tr_stage(TraceCause::Noc, at_cu);
                    at_cu
                }
            }
        };
        self.insert_l1(cu, l1_key, l1_fill_perms, data_at_cu, virtual_l1);
        self.l1_mshr[cu].register(l1_key, data_at_cu);
        data_at_cu
    }

    /// A write through a physical L2 (GPU writes are posted at the
    /// CU; this models the downstream bandwidth and state effects).
    pub(super) fn write_physical(&mut self, cu: usize, l2_key: LineKey, t: Cycle) {
        // Write-through, no-allocate L1: update in place if present.
        let _ = self.l1[cu].lookup(l2_key, t);
        self.tr_stage(TraceCause::L1Lookup, t + Duration::new(self.cfg.lat.l1_hit));
        let l2_arrival = t + Duration::new(self.cfg.lat.l1_hit) + self.noc.cu_to_l2();
        self.tr_stage(TraceCause::Noc, l2_arrival);
        let service = self.l2.reserve_port(l2_key, l2_arrival);
        self.tr_stage(TraceCause::L2Lookup, service);
        if self.l2.lookup(l2_key, service).is_some() {
            self.l2.mark_dirty(l2_key);
            return;
        }
        match self.l2_mshr.check(l2_key, service) {
            MshrOutcome::Merged { .. } => {
                // The fill is in flight; the line is already in the tag
                // store — mark it dirty when it lands.
                self.l2.mark_dirty(l2_key);
            }
            MshrOutcome::Primary => {
                // Write-allocate: fetch the line, install dirty.
                self.tr_stage(
                    TraceCause::L2Lookup,
                    service + Duration::new(self.cfg.lat.l2_hit),
                );
                let filled = self.fetch_line(service + Duration::new(self.cfg.lat.l2_hit));
                self.insert_l2_physical(l2_key, true, filled);
                self.l2_mshr.register(l2_key, filled);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use gvc_mem::{OsLite, VRange, PAGE_BYTES};

    fn setup(pages: u64) -> (OsLite, gvc_mem::ProcessId, VRange) {
        let mut os = OsLite::new(256 << 20);
        let pid = os.create_process();
        let r = os.mmap(pid, pages * PAGE_BYTES, Perms::READ_WRITE).unwrap();
        (os, pid, r)
    }

    fn read_at(r: &VRange, off: u64, cu: usize, at: u64) -> LineAccess {
        LineAccess {
            cu,
            asid: gvc_mem::Asid(0),
            vaddr: r.addr_at(off),
            is_write: false,
            at: Cycle::new(at),
        }
    }

    #[test]
    fn cold_read_walks_and_fetches_then_warm_read_hits_l1() {
        let (os, _pid, r) = setup(4);
        let mut mem = MemorySystem::new(SystemConfig::baseline_512());
        let cold = mem.access(read_at(&r, 0, 0, 0), &os);
        assert!(cold.fault.is_none());
        assert!(
            cold.done_at > Cycle::new(200),
            "cold miss crosses TLB+L2+DRAM"
        );
        let warm = mem.access(read_at(&r, 0, 0, cold.done_at.raw()), &os);
        assert_eq!(
            warm.done_at,
            cold.done_at + Duration::new(mem.config().lat.l1_hit + mem.config().lat.per_cu_tlb)
        );
        assert_eq!(mem.per_cu_tlb_stats().misses.get(), 1);
        assert_eq!(mem.per_cu_tlb_stats().hits.get(), 1);
    }

    #[test]
    fn fig2_breakdown_classification() {
        let (os, _pid, r) = setup(2);
        // One-entry per-CU TLB so a second page always evicts the first.
        let cfg = SystemConfig::baseline_512().with_per_cu_tlb_entries(Some(1));
        let mut mem = MemorySystem::new(cfg);
        // Touch page 0 (miss, data in mem), then page 1 (miss, mem),
        // then page 0 again: TLB misses but data is in L1 now.
        let a = mem.access(read_at(&r, 0, 0, 0), &os);
        let b = mem.access(read_at(&r, PAGE_BYTES, 0, a.done_at.raw()), &os);
        let _c = mem.access(read_at(&r, 0, 0, b.done_at.raw()), &os);
        let c = mem.counters();
        assert_eq!(c.tlb_miss_data_in_mem.get(), 2);
        assert_eq!(c.tlb_miss_data_in_l1.get(), 1);
    }

    #[test]
    fn l2_hit_classification_for_cross_cu_sharing() {
        let (os, _pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::baseline_512());
        // CU 0 fetches the line into L2 (and its own L1).
        let a = mem.access(read_at(&r, 0, 0, 0), &os);
        // CU 1 misses its TLB; the data is in the shared L2.
        let _b = mem.access(read_at(&r, 0, 1, a.done_at.raw()), &os);
        assert_eq!(mem.counters().tlb_miss_data_in_l2.get(), 1);
    }

    #[test]
    fn concurrent_same_page_tlb_misses_follow_merge_policy() {
        // Upper-bound model: every per-CU TLB miss reaches the IOMMU,
        // even with a same-page fill in flight.
        let (os, _pid, r) = setup(1);
        let mut cfg = SystemConfig::baseline_512();
        cfg.merge_tlb_misses = false;
        let mut mem = MemorySystem::new(cfg);
        mem.access(read_at(&r, 0, 0, 0), &os);
        mem.access(read_at(&r, 128, 0, 0), &os);
        assert_eq!(mem.per_cu_tlb_stats().misses.get(), 2);
        assert_eq!(mem.iommu.stats().requests.get(), 2);

        // MSHR-merging variant (default): one IOMMU request, two misses.
        let mut mem = MemorySystem::new(SystemConfig::baseline_512());
        mem.access(read_at(&r, 0, 0, 0), &os);
        mem.access(read_at(&r, 128, 0, 0), &os);
        assert_eq!(mem.per_cu_tlb_stats().misses.get(), 2);
        assert_eq!(mem.iommu.stats().requests.get(), 1, "second miss merged");
    }

    #[test]
    fn write_is_posted_but_consumes_translation() {
        let (os, _pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::baseline_512());
        let w = mem.access(
            LineAccess {
                is_write: true,
                ..read_at(&r, 0, 0, 0)
            },
            &os,
        );
        assert!(w.fault.is_none());
        assert_eq!(w.done_at, Cycle::new(1), "posted write acks immediately");
        assert_eq!(mem.iommu.stats().requests.get(), 1);
        // The line was write-allocated dirty in L2.
        let (pa, _) = os.translate(gvc_mem::ProcessId(0), r.start()).unwrap();
        let key = MemorySystem::phys_key(pa.ppn(), r.start());
        assert!(mem.l2.peek(key).unwrap().dirty);
    }

    #[test]
    fn write_to_readonly_page_faults() {
        let mut os = OsLite::new(64 << 20);
        let pid = os.create_process();
        let r = os.mmap(pid, PAGE_BYTES, Perms::READ_ONLY).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::baseline_512());
        let w = mem.access(
            LineAccess {
                is_write: true,
                ..read_at(&r, 0, 0, 0)
            },
            &os,
        );
        assert_eq!(w.fault, Some(AccessFault::PermissionDenied));
        assert_eq!(mem.counters().perm_faults.get(), 1);
    }

    #[test]
    fn unmapped_access_page_faults() {
        let (os, _pid, _r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::baseline_512());
        let a = LineAccess {
            cu: 0,
            asid: gvc_mem::Asid(0),
            vaddr: gvc_mem::VAddr::new(0xdead_0000),
            is_write: false,
            at: Cycle::new(0),
        };
        assert_eq!(mem.access(a, &os).fault, Some(AccessFault::PageFault));
    }

    #[test]
    fn ideal_mmu_never_queues_at_iommu() {
        let (os, _pid, r) = setup(64);
        let mut mem = MemorySystem::new(SystemConfig::ideal_mmu());
        for p in 0..64 {
            mem.access(read_at(&r, p * PAGE_BYTES, (p % 16) as usize, 0), &os);
        }
        assert_eq!(mem.iommu.stats().serialization_cycles.get(), 0);
        // Infinite per-CU TLBs: repeat accesses never reach the IOMMU.
        let reqs = mem.iommu.stats().requests.get();
        for p in 0..64 {
            mem.access(
                read_at(&r, p * PAGE_BYTES, (p % 16) as usize, 1_000_000),
                &os,
            );
        }
        assert_eq!(mem.iommu.stats().requests.get(), reqs);
    }

    #[test]
    fn small_iommu_port_serializes_burst() {
        let (os, _pid, r) = setup(64);
        let mut base = MemorySystem::new(SystemConfig::baseline_512());
        let mut ideal = MemorySystem::new(SystemConfig::ideal_mmu());
        let mut worst_base = Cycle::ZERO;
        let mut worst_ideal = Cycle::ZERO;
        for p in 0..64 {
            let a = read_at(&r, p * PAGE_BYTES, (p % 16) as usize, 0);
            worst_base = worst_base.max(base.access(a, &os).done_at);
            worst_ideal = worst_ideal.max(ideal.access(a, &os).done_at);
        }
        assert!(
            worst_base > worst_ideal,
            "64 same-cycle TLB misses must queue at the 1/cycle port"
        );
        assert!(base.iommu.stats().serialization_cycles.get() > 0);
    }
}
