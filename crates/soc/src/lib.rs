#![warn(missing_docs)]

//! SoC substrate: interconnect, DRAM, and the coherence directory.
//!
//! * [`noc`] — latency models for the dance-hall GPU network (CU ↔
//!   shared L2), the L2 ↔ IOMMU/FBT hop, and the PCIe-protocol path a
//!   per-CU TLB miss takes to the IOMMU in the baseline (§2.1: even
//!   integrated GPUs issue IOMMU requests with PCIe-protocol latency).
//! * [`dram`] — a 192 GB/s token-bandwidth DRAM with fixed access
//!   latency (Table 1).
//! * [`directory`] — a minimal coherence directory between the GPU L2,
//!   the CPU cache hierarchy, and memory, plus a deterministic CPU
//!   probe injector used to exercise the reverse-translation (backward
//!   table) path of the paper's design.

pub mod directory;
pub mod dram;
pub mod noc;

pub use directory::{Directory, DirectorySnapshot, Probe, ProbeInjector, ProbeKind};
pub use dram::{Dram, DramConfig, DramSnapshot};
pub use noc::{Noc, NocConfig};
