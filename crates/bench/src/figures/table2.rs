//! Table 2: the evaluated MMU design configurations.

use gvc::SystemConfig;
use gvc_tlb::tlb::TlbOrganization;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One design row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Design name.
    pub design: String,
    /// Per-CU TLB description.
    pub per_cu_tlb: String,
    /// IOMMU TLB description.
    pub iommu_tlb: String,
    /// Bandwidth limit description.
    pub bandwidth: String,
}

/// The rendered table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// All design rows in the paper's order.
    pub rows: Vec<Row>,
}

fn tlb_desc(org: TlbOrganization) -> String {
    match org {
        TlbOrganization::FullyAssociative { entries } => format!("{entries}-entry"),
        TlbOrganization::SetAssociative { entries, .. } => format!("{entries}-entry"),
        TlbOrganization::Infinite => "Infinite size".to_string(),
    }
}

fn row(name: &str, cfg: &SystemConfig, per_cu: Option<String>) -> Row {
    Row {
        design: name.to_string(),
        per_cu_tlb: per_cu.unwrap_or_else(|| tlb_desc(cfg.per_cu_tlb.organization)),
        iommu_tlb: match cfg.design {
            gvc::MmuDesign::VirtualHierarchy {
                fbt_as_second_level: true,
            } => {
                format!(
                    "{} (+{}-entry FBT)",
                    tlb_desc(cfg.iommu.tlb.organization),
                    cfg.fbt.entries
                )
            }
            _ => tlb_desc(cfg.iommu.tlb.organization),
        },
        bandwidth: match cfg.iommu.port_width {
            Some(w) => format!("{w} access/cycle"),
            None => "Infinite".to_string(),
        },
    }
}

/// Collects the table.
pub fn collect() -> Table2 {
    Table2 {
        rows: vec![
            row("IDEAL MMU", &SystemConfig::ideal_mmu(), None),
            row("Baseline 512", &SystemConfig::baseline_512(), None),
            row("Baseline 16K", &SystemConfig::baseline_16k(), None),
            row(
                "VC W/O OPT",
                &SystemConfig::vc_without_opt(),
                Some("-".to_string()),
            ),
            row(
                "VC With OPT",
                &SystemConfig::vc_with_opt(),
                Some("-".to_string()),
            ),
        ],
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: evaluated MMU design configurations")?;
        writeln!(
            f,
            "{:<14} {:>14} {:>26} {:>16}",
            "Design", "Per-CU TLB", "IOMMU TLB", "B/W Limit"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>14} {:>26} {:>16}",
                r.design, r.per_cu_tlb, r.iommu_tlb, r.bandwidth
            )?;
        }
        Ok(())
    }
}
