//! The hardened sweep runner: a sweep containing a run that panics and
//! a run that trips the cycle watchdog still completes, reporting both
//! as structured [`RunError`]s while every healthy key gets its full
//! report.
//!
//! Everything lives in ONE test function: the watchdog and retry knobs
//! are process-wide, and a sibling test running concurrently would see
//! them.

use gvc::SystemConfig;
use gvc_bench::runner::{self, ParallelExecutor, RunError, RunKey};
use gvc_gpu::Truncation;
use gvc_workloads::{Scale, WorkloadId};

#[test]
fn sweep_survives_panics_and_timeouts_with_structured_errors() {
    let scale = Scale::test();
    let mk = |workload| RunKey {
        workload,
        config: SystemConfig::baseline_512(),
        scale,
        seed: 1,
    };
    let a = mk(WorkloadId::Pathfinder);
    let b = mk(WorkloadId::Backprop);

    // Measure both runs un-watchdogged, then pick a cycle budget that
    // lets the faster one finish and cuts the slower one.
    let a_cycles = runner::run(a.workload, a.config, a.scale, a.seed).cycles;
    let b_cycles = runner::run(b.workload, b.config, b.scale, b.seed).cycles;
    assert_ne!(a_cycles, b_cycles, "need distinct run lengths to split");
    let (fast, slow) = if a_cycles < b_cycles { (a, b) } else { (b, a) };
    let (fast_cycles, slow_cycles) = (a_cycles.min(b_cycles), a_cycles.max(b_cycles));

    // A config whose FBT geometry panics the constructor (`ways` must
    // divide `entries`) — in every design, deterministically.
    let mut bad_config = SystemConfig::baseline_512();
    bad_config.fbt.ways = 3;
    let bad = RunKey {
        config: bad_config,
        ..fast
    };

    runner::set_max_retries(1);
    runner::set_max_cycles(Some(fast_cycles));
    runner::clear_cache();
    let sweep = ParallelExecutor::with_workers(3).sweep(&[fast, bad, slow]);
    runner::set_max_cycles(None);

    assert_eq!(sweep.results.len(), 3, "sweep must report every key");
    assert_eq!(sweep.ok_count(), 1);
    assert_eq!(sweep.err_count(), 2);

    let (key0, healthy) = &sweep.results[0];
    assert_eq!(*key0, fast);
    let healthy = healthy.as_ref().expect("healthy run completes");
    assert_eq!(healthy.cycles, fast_cycles, "watchdog must not skew it");
    assert_eq!(healthy.truncated, None);

    let (key1, panicked) = &sweep.results[1];
    assert_eq!(*key1, bad);
    match panicked {
        Err(RunError::Panicked {
            message,
            attempts,
            retry_budget,
            backoff_ms,
        }) => {
            assert!(
                message.contains("divide"),
                "panic payload should survive: {message:?}"
            );
            assert_eq!(*attempts, 2, "1 retry = 2 attempts");
            assert_eq!(*retry_budget, 1, "the configured budget is surfaced");
            // One retry slept one deterministic backoff: the attempt-1
            // schedule is base 4 ms jittered into [2, 6) ms.
            let expected = runner::retry_backoff_ms(&bad, 1);
            assert_eq!(*backoff_ms, expected, "backoff must be the seeded delay");
            assert!((2..6).contains(backoff_ms), "attempt-1 jitter window");
            let shown = format!("{}", panicked.as_ref().unwrap_err());
            assert!(shown.contains("panicked"), "Display: {shown}");
            assert!(shown.contains("retry budget 1"), "Display: {shown}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }

    let (key2, timed_out) = &sweep.results[2];
    assert_eq!(*key2, slow);
    match timed_out {
        Err(RunError::Timeout {
            truncation,
            partial,
        }) => {
            assert_eq!(*truncation, Truncation::MaxCycles);
            assert!(
                partial.mem_instructions > 0,
                "partial stats must be carried"
            );
            assert!(
                partial.cycles < slow_cycles,
                "cut run must stop before its natural end"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }

    // The poisoned/cut state must not leak: with the watchdog off, the
    // same slow key runs to completion again.
    runner::clear_cache();
    let clean = runner::try_run(slow.workload, slow.config, slow.scale, slow.seed)
        .expect("watchdog off: runs to completion");
    assert_eq!(clean.cycles, slow_cycles);
}

// The backoff and CLI tests below are safe as sibling tests: they are
// pure functions and touch none of the process-wide runner knobs.

mod retry_backoff {
    use super::*;

    fn key(seed: u64) -> RunKey {
        RunKey {
            workload: WorkloadId::Bfs,
            config: SystemConfig::baseline_512(),
            scale: Scale::test(),
            seed,
        }
    }

    #[test]
    fn backoff_is_deterministic_per_key_and_attempt() {
        for attempt in 1..=8 {
            assert_eq!(
                runner::retry_backoff_ms(&key(1), attempt),
                runner::retry_backoff_ms(&key(1), attempt),
                "same key + attempt must produce the same delay"
            );
        }
        let first: Vec<u64> = (1..=6)
            .map(|a| runner::retry_backoff_ms(&key(1), a))
            .collect();
        let other: Vec<u64> = (1..=6)
            .map(|a| runner::retry_backoff_ms(&key(2), a))
            .collect();
        assert_ne!(first, other, "distinct keys must decorrelate the schedule");
    }

    #[test]
    fn backoff_is_exponential_with_bounded_jitter() {
        for attempt in 1..=12u32 {
            let base = (4u64 << (attempt - 1).min(6)).min(256);
            let d = runner::retry_backoff_ms(&key(3), attempt);
            assert!(
                d >= base / 2 && d < base + base / 2,
                "attempt {attempt}: delay {d} outside [{}, {})",
                base / 2,
                base + base / 2
            );
        }
        // The cap: arbitrarily late attempts never sleep longer than
        // 3/2 × 256 ms.
        assert!(runner::retry_backoff_ms(&key(3), 1_000) < 384);
    }
}

// The CLI tests below are safe as sibling tests: `cli::parse` is a
// pure function and touches none of the process-wide runner knobs.

mod cli_validation {
    use gvc_bench::cli::{self, CliError};

    fn parse(args: &[&str]) -> Result<cli::CliOptions, CliError> {
        cli::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn expect_invalid(args: &[&str], flag: &str, needle: &str) {
        match parse(args) {
            Err(CliError::Invalid { flag: f, message }) => {
                assert_eq!(f, flag, "wrong flag blamed for {args:?}");
                assert!(
                    message.contains(needle),
                    "message for {args:?} should mention {needle:?}: {message:?}"
                );
            }
            other => panic!("{args:?} should be rejected as Invalid, got {other:?}"),
        }
    }

    #[test]
    fn jobs_zero_is_a_structured_error_not_usage() {
        expect_invalid(&["fig2", "--jobs", "0"], "--jobs", "at least 1");
        assert!(parse(&["fig2", "--jobs", "4"]).is_ok());
    }

    #[test]
    fn inject_rate_must_be_a_finite_probability() {
        expect_invalid(&["fig2", "--inject", "1.5"], "--inject", "[0, 1]");
        expect_invalid(&["fig2", "--inject", "-0.1"], "--inject", "[0, 1]");
        expect_invalid(&["fig2", "--inject", "NaN"], "--inject", "[0, 1]");
        expect_invalid(&["fig2", "--inject", "inf"], "--inject", "[0, 1]");
        expect_invalid(&["fig2", "--inject", "zzz"], "--inject", "number");
        let ok = parse(&["fig2", "--inject", "0.02"]).unwrap();
        assert_eq!(ok.inject_rate, Some(0.02));
    }

    #[test]
    fn max_cycles_zero_is_rejected_as_watchdog_disarm() {
        expect_invalid(&["fig2", "--max-cycles", "0"], "--max-cycles", "watchdog");
        assert_eq!(
            parse(&["fig2", "--max-cycles", "5000"]).unwrap().max_cycles,
            Some(5000)
        );
    }

    #[test]
    fn unknown_flags_and_targets_name_the_offender() {
        expect_invalid(&["--frobnicate"], "--frobnicate", "unknown flag");
        expect_invalid(&["fig99"], "fig99", "unknown target");
    }

    #[test]
    fn trace_subcommand_validates_design_and_workload() {
        let ok = parse(&["trace", "vc", "bfs"]).unwrap();
        let spec = ok.trace.unwrap();
        assert_eq!(spec.design, "vc");
        assert_eq!(spec.workload.name(), "bfs");
        expect_invalid(&["trace", "warp-drive", "bfs"], "trace", "unknown design");
        expect_invalid(&["trace", "vc", "no-such-wl"], "trace", "unknown workload");
        expect_invalid(&["trace", "vc"], "trace", "missing workload");
        expect_invalid(&["trace"], "trace", "trace <design> <workload>");
    }

    #[test]
    fn bench_subcommand_and_its_flags() {
        let ok = parse(&["bench"]).unwrap();
        assert!(ok.bench && !ok.micro && ok.bench_check.is_none());
        let ok = parse(&["bench", "--micro", "--check", "BENCH_0.json"]).unwrap();
        assert!(ok.bench && ok.micro);
        assert_eq!(ok.bench_check.as_deref(), Some("BENCH_0.json"));
        // Both flags are meaningless outside `bench`.
        expect_invalid(&["fig2", "--micro"], "--micro", "bench");
        expect_invalid(&["fig2", "--check", "BENCH_0.json"], "--check", "bench");
        expect_invalid(&["bench", "--check"], "--check", "missing value");
    }

    #[test]
    fn empty_command_line_and_help_are_usage() {
        assert!(matches!(parse(&[]), Err(CliError::Usage)));
        assert!(matches!(parse(&["--help"]), Err(CliError::Usage)));
        assert!(matches!(parse(&["fig2", "-h"]), Err(CliError::Usage)));
    }
}
