//! Multi-tenant GPU service simulation (ROADMAP item 1).
//!
//! The paper evaluates one kernel in one or two address spaces; the
//! "GPU as a shared service" regime that SPARTA and Mosaic identify as
//! the scaling frontier instead churns hundreds of ASIDs through the
//! TLBs, the virtual caches, and the FBT. This module models that
//! regime on top of the existing hierarchy:
//!
//! * a deterministic, [`SimRng`]-forked **arrival process**: each
//!   tenant owns a private page table via [`OsLite`] and submits a
//!   stream of kernels separated by random think gaps;
//! * an MPS-style **time-slicing scheduler**: the whole CU array runs
//!   one tenant at a time for a configurable quantum, paying a fixed
//!   context-switch cost whenever the active address space changes;
//! * **tenant-lifecycle churn**: every [`ServiceConfig::churn_period`]
//!   kernel completions the completing tenant is evicted — its process
//!   destroyed, the full [`Shootdown::AllOf`] applied, its ASID
//!   recycled for the respawned tenant — which is exactly the path a
//!   stale translation or cache line would leak across tenants.
//!
//! Under paranoid mode every eviction is followed by
//! `MemorySystem::assert_no_asid_residue` (the cross-tenant isolation
//! check: no tenant may ever hit another tenant's lines) and the run
//! asserts the stall conservation law (per-tenant stall cycles sum to
//! the aggregate).
//!
//! Everything is replayed byte-identically from
//! [`ServiceConfig::seed`]: the simulation is single-threaded with a
//! global monotone clock, and every random draw comes from per-tenant
//! forks of one seeded generator.

use gvc::{inject, InjectEvent, InjectPlan, InjectReport};
use gvc::{LineAccess, MemorySystem, SystemConfig};
use gvc_engine::time::Cycle;
use gvc_engine::{Cdf, SimRng};
use gvc_mem::{OsLite, Perms, ProcessId, VRange, LINE_BYTES, PAGE_BYTES};
use gvc_soc::{Probe, ProbeKind};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shape of a multi-tenant service run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Number of tenants (each gets its own process/ASID).
    pub tenants: usize,
    /// Scheduler quantum in cycles: how long one tenant keeps the CU
    /// array before the scheduler rotates.
    pub quantum: u64,
    /// Fixed cost of switching the active address space (pipeline
    /// drain + state swap).
    pub context_switch_cycles: u64,
    /// Kernels each tenant submits over its lifetime.
    pub kernels_per_tenant: u64,
    /// Wavefronts per kernel.
    pub waves_per_kernel: u64,
    /// Coalesced line accesses per wavefront.
    pub accesses_per_wave: u64,
    /// 4 KB pages in each tenant's working set.
    pub pages_per_tenant: u64,
    /// Evict (destroy + full shootdown + respawn under the recycled
    /// ASID) the completing tenant every this many kernel completions
    /// across the service; `0` disables churn.
    pub churn_period: u64,
    /// Mean think time between a tenant's kernel completions and its
    /// next submission.
    pub mean_arrival_gap: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Outstanding line requests per CU (MSHR admission limit).
    pub max_outstanding_per_cu: usize,
    /// Master seed; all randomness derives from per-tenant forks.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            tenants: 16,
            quantum: 512,
            context_switch_cycles: 300,
            kernels_per_tenant: 3,
            waves_per_kernel: 4,
            accesses_per_wave: 32,
            pages_per_tenant: 24,
            churn_period: 7,
            mean_arrival_gap: 2_000,
            write_fraction: 0.25,
            max_outstanding_per_cu: 64,
            seed: 42,
        }
    }
}

/// Per-tenant service-level statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant's final ASID (recycled across its own evictions).
    pub asid: u16,
    /// Line accesses the tenant issued.
    pub accesses: u64,
    /// Total translation/memory stall cycles (completion − issue,
    /// summed over the tenant's accesses).
    pub stall_cycles: u64,
    /// p99 of the tenant's per-access stall latency.
    pub p99_stall: f64,
    /// Times this tenant was evicted and respawned.
    pub evictions: u64,
}

/// End-of-run report for one (tenant count × design) service cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Memory-system design label.
    pub design: String,
    /// Tenant count.
    pub tenants: usize,
    /// Scheduler quantum (cycles).
    pub quantum: u64,
    /// Total simulated cycles (last completion).
    pub cycles: u64,
    /// Line accesses across all tenants.
    pub accesses: u64,
    /// Aggregate throughput in accesses per kilocycle.
    pub throughput: f64,
    /// Sum of all tenants' stall cycles, accumulated independently of
    /// the per-tenant tallies (the conservation law's left-hand side).
    pub aggregate_stall_cycles: u64,
    /// p99 stall latency over every access of every tenant.
    pub p99_stall: f64,
    /// Jain's fairness index over per-tenant service rates
    /// (1.0 = perfectly fair).
    pub fairness: f64,
    /// Tenant evictions performed (churn).
    pub evictions: u64,
    /// Address-space context switches performed.
    pub context_switches: u64,
    /// Faulting accesses (should be 0 outside injection runs).
    pub faults: u64,
    /// Fault-injection tally when the design config armed a plan.
    pub injected: Option<InjectReport>,
    /// Per-tenant breakdown, indexed by tenant.
    pub per_tenant: Vec<TenantStats>,
}

impl ServiceReport {
    /// Asserts the stall conservation law: the independently accumulated
    /// aggregate equals the sum of the per-tenant tallies. Paranoid runs
    /// check this before returning; tests can re-assert on any report.
    ///
    /// # Panics
    ///
    /// Panics if a stall cycle was attributed to no tenant or to two.
    pub fn check_stall_conservation(&self) {
        let per_tenant: u64 = self.per_tenant.iter().map(|t| t.stall_cycles).sum();
        assert_eq!(
            per_tenant, self.aggregate_stall_cycles,
            "stall conservation: per-tenant sum != aggregate"
        );
        let accesses: u64 = self.per_tenant.iter().map(|t| t.accesses).sum();
        assert_eq!(
            accesses, self.accesses,
            "access conservation: per-tenant sum != aggregate"
        );
    }
}

/// Jain's fairness index over non-negative rates: `(Σx)² / (n·Σx²)`,
/// 1.0 when all rates are equal, approaching `1/n` under starvation.
pub(crate) fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (rates.len() as f64 * sq)
}

/// Per-CU outstanding-request admission (same shape as the run loop's
/// MSHR limit in [`crate::sim`]).
#[derive(Debug, Default)]
pub(crate) struct Outstanding {
    completions: BinaryHeap<Reverse<Cycle>>,
}

impl Outstanding {
    pub(crate) fn admit(&mut self, at: Cycle, cap: usize) -> Cycle {
        while let Some(&Reverse(done)) = self.completions.peek() {
            if done <= at {
                self.completions.pop();
            } else {
                break;
            }
        }
        if self.completions.len() < cap {
            at
        } else {
            let Reverse(done) = self.completions.pop().expect("cap is at least 1");
            done.max(at)
        }
    }

    pub(crate) fn track(&mut self, done: Cycle) {
        self.completions.push(Reverse(done));
    }

    /// The outstanding completion times as a sorted vector (for
    /// checkpointing; the heap is behaviorally a multiset).
    pub(crate) fn to_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.completions.iter().map(|&Reverse(c)| c.raw()).collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds the admission heap from checkpointed completion times.
    pub(crate) fn from_sorted(times: &[u64]) -> Self {
        Outstanding {
            completions: times.iter().map(|&t| Reverse(Cycle::new(t))).collect(),
        }
    }
}

/// One tenant's live scheduling state.
struct Tenant {
    pid: ProcessId,
    region: VRange,
    rng: SimRng,
    /// Kernels not yet submitted.
    kernels_left: u64,
    /// Wavefronts left in the in-flight kernel (0 = between kernels).
    waves_left: u64,
    /// Accesses left in the in-flight wavefront.
    accesses_left: u64,
    /// Earliest cycle the next kernel may start (arrival gate).
    next_arrival: u64,
    accesses: u64,
    stall_cycles: u64,
    stalls: Cdf,
    evictions: u64,
}

impl Tenant {
    /// Whether the tenant still has work (submitted or queued).
    fn has_work(&self) -> bool {
        self.kernels_left > 0 || self.waves_left > 0
    }

    /// Whether the tenant can issue at `now`.
    fn runnable(&self, now: u64) -> bool {
        self.waves_left > 0 || (self.kernels_left > 0 && self.next_arrival <= now)
    }
}

/// Runs the multi-tenant service scenario for one design and returns
/// its service-level report. `cfg.paranoid` additionally runs the
/// cross-tenant isolation check after every eviction and the stall
/// conservation law at the end.
///
/// # Panics
///
/// Panics if `sc.tenants` is 0 or exceeds the usable ASID namespace,
/// or on any paranoid-mode invariant violation.
pub fn run_service(sc: &ServiceConfig, sys: SystemConfig) -> ServiceReport {
    assert!(sc.tenants > 0, "a service needs at least one tenant");
    assert!(
        sc.tenants <= gvc_mem::os::MAX_PROCESSES,
        "tenant count exceeds the ASID namespace"
    );
    let paranoid = sys.paranoid;
    let n_cus = sys.n_cus;
    let mut plan = inject::plan_for(&sys);
    let mut mem = MemorySystem::new(sys);

    // Enough lazy physical memory for every tenant's working set plus
    // page-table nodes, with headroom for churn-respawned regions.
    let frames = sc.tenants as u64 * (sc.pages_per_tenant + 16) * 4 + 4096;
    let mut os = OsLite::new(frames * PAGE_BYTES);

    let root = SimRng::seeded(sc.seed);
    let mut tenants: Vec<Tenant> = (0..sc.tenants)
        .map(|i| {
            let mut rng = root.fork(i as u64 + 1);
            let pid = os
                .try_create_process()
                .expect("tenant count checked against the namespace");
            let region = os
                .mmap(pid, sc.pages_per_tenant * PAGE_BYTES, Perms::READ_WRITE)
                .expect("sized physical memory above");
            let first_arrival = rng.below(sc.mean_arrival_gap.max(1));
            Tenant {
                pid,
                region,
                rng,
                kernels_left: sc.kernels_per_tenant,
                waves_left: 0,
                accesses_left: 0,
                next_arrival: first_arrival,
                accesses: 0,
                stall_cycles: 0,
                stalls: Cdf::new(),
                evictions: 0,
            }
        })
        .collect();

    let cap = sc.max_outstanding_per_cu.max(1);
    let mut outstanding: Vec<Outstanding> = (0..n_cus).map(|_| Outstanding::default()).collect();
    let mut now = 0u64;
    let mut end = 0u64;
    let mut active: Option<usize> = None;
    let mut completions = 0u64;
    let mut evictions = 0u64;
    let mut context_switches = 0u64;
    let mut faults = 0u64;
    let mut aggregate_stall = 0u64;
    let mut total_accesses = 0u64;

    loop {
        // Pick the next runnable tenant, round-robin from the last
        // active one; if every tenant with work is gated on an arrival,
        // jump the clock to the earliest gate.
        if !tenants.iter().any(Tenant::has_work) {
            break;
        }
        let start = active.map_or(0, |a| a + 1);
        let next = (0..sc.tenants)
            .map(|i| (start + i) % sc.tenants)
            .find(|&i| tenants[i].runnable(now));
        let Some(idx) = next else {
            now = tenants
                .iter()
                .filter(|t| t.has_work())
                .map(|t| t.next_arrival)
                .min()
                .expect("some tenant has work")
                .max(now + 1);
            continue;
        };
        if active.is_some() && active != Some(idx) {
            now += sc.context_switch_cycles;
            context_switches += 1;
        }
        active = Some(idx);

        let slice_end = now + sc.quantum;
        while now < slice_end {
            let t = &mut tenants[idx];
            if t.waves_left == 0 {
                if t.kernels_left == 0 || t.next_arrival > now {
                    break;
                }
                t.kernels_left -= 1;
                t.waves_left = sc.waves_per_kernel.max(1);
                t.accesses_left = sc.accesses_per_wave.max(1);
            }

            // Issue one coalesced line access for the active tenant.
            let lines = t.region.bytes() / LINE_BYTES;
            let offset = t.rng.below(lines) * LINE_BYTES;
            let cu = t.rng.below(n_cus as u64) as usize;
            let is_write = t.rng.chance(sc.write_fraction);
            let at = outstanding[cu].admit(Cycle::new(now + 1), cap);
            now = at.raw();
            let asid = t.pid.asid();
            if let Some(p) = plan.as_mut() {
                p.observe(asid, t.region.addr_at(offset).vpn());
            }
            let res = mem.access(
                LineAccess {
                    cu,
                    asid,
                    vaddr: t.region.addr_at(offset),
                    is_write,
                    at,
                },
                &os,
            );
            if res.fault.is_some() {
                faults += 1;
            }
            outstanding[cu].track(res.done_at);
            end = end.max(res.done_at.raw());
            let stall = res.done_at.raw() - at.raw();
            t.accesses += 1;
            t.stall_cycles += stall;
            t.stalls.push(stall as f64);
            total_accesses += 1;
            aggregate_stall += stall;

            t.accesses_left -= 1;
            if t.accesses_left == 0 {
                t.waves_left -= 1;
                if t.waves_left > 0 {
                    t.accesses_left = sc.accesses_per_wave.max(1);
                } else {
                    // Kernel complete: schedule the next submission and
                    // run the churn policy.
                    completions += 1;
                    let gap = t.rng.range(1, 2 * sc.mean_arrival_gap.max(1));
                    t.next_arrival = now + gap;
                    if sc.churn_period > 0
                        && completions.is_multiple_of(sc.churn_period)
                        && t.kernels_left > 0
                    {
                        evict_and_respawn(
                            &mut tenants[idx],
                            &mut os,
                            &mut mem,
                            sc,
                            Cycle::new(now),
                            paranoid,
                        );
                        evictions += 1;
                    }
                }
            }

            if let Some(p) = plan.as_mut() {
                if let Some(ev) = p.poll() {
                    apply_inject(ev, p, &mut os, &mut mem, Cycle::new(now));
                    if paranoid {
                        mem.check_invariants();
                    }
                }
            }
        }
    }

    if paranoid {
        mem.check_invariants();
    }
    let end = end.max(now);
    let mem_report = mem.finish(Cycle::new(end));

    let mut all_stalls = Cdf::new();
    let mut rates = Vec::with_capacity(sc.tenants);
    let per_tenant: Vec<TenantStats> = tenants
        .iter_mut()
        .map(|t| {
            all_stalls.merge(&t.stalls);
            rates.push(t.accesses as f64 / (1.0 + t.stall_cycles as f64));
            TenantStats {
                asid: t.pid.asid().0,
                accesses: t.accesses,
                stall_cycles: t.stall_cycles,
                p99_stall: t.stalls.quantile(0.99),
                evictions: t.evictions,
            }
        })
        .collect();

    let report = ServiceReport {
        design: mem_report.design.clone(),
        tenants: sc.tenants,
        quantum: sc.quantum,
        cycles: end,
        accesses: total_accesses,
        throughput: total_accesses as f64 * 1000.0 / end.max(1) as f64,
        aggregate_stall_cycles: aggregate_stall,
        p99_stall: all_stalls.quantile(0.99),
        fairness: jain_index(&rates),
        evictions,
        context_switches,
        faults,
        injected: plan.as_ref().map(InjectPlan::report),
        per_tenant,
    };
    if paranoid {
        report.check_stall_conservation();
    }
    report
}

/// Destroys a tenant's process, applies the full shootdown, verifies
/// (under paranoid mode) that no state tagged with the dead ASID
/// survived, and respawns the tenant under the recycled ASID with a
/// fresh working set.
fn evict_and_respawn(
    t: &mut Tenant,
    os: &mut OsLite,
    mem: &mut MemorySystem,
    sc: &ServiceConfig,
    now: Cycle,
    paranoid: bool,
) {
    let dead = t.pid.asid();
    let sd = os.destroy_process(t.pid).expect("tenant process is live");
    mem.apply_shootdown(&sd, now);
    if paranoid {
        // The cross-tenant isolation check: anything still tagged with
        // the dead ASID is state the respawned tenant could hit.
        mem.assert_no_asid_residue(dead);
    }
    t.pid = os
        .try_create_process()
        .expect("the destroyed slot was just freed");
    debug_assert_eq!(t.pid.asid(), dead, "LIFO recycling reuses the dead ASID");
    t.region = os
        .mmap(t.pid, sc.pages_per_tenant * PAGE_BYTES, Perms::READ_WRITE)
        .expect("eviction freed at least the respawn's frames");
    t.evictions += 1;
}

/// Executes one injected event against the live hierarchy/OS (the
/// service-layer twin of the run loop's handler in [`crate::sim`]).
pub(crate) fn apply_inject(
    ev: InjectEvent,
    plan: &mut InjectPlan,
    os: &mut OsLite,
    mem: &mut MemorySystem,
    at: Cycle,
) {
    match ev {
        InjectEvent::Shootdown(sd) => {
            mem.apply_shootdown(&sd, at);
        }
        InjectEvent::ProbeBurst(targets) => {
            for tgt in targets {
                let delivered = match os.translate(ProcessId(tgt.asid.0), tgt.vpn.base()) {
                    Some((pa, _)) => {
                        let kind = if tgt.invalidate {
                            ProbeKind::Invalidate
                        } else {
                            ProbeKind::Downgrade
                        };
                        let paddr = pa.ppn().line_addr(tgt.line);
                        mem.handle_probe(Probe { paddr, kind, at });
                        true
                    }
                    None => false,
                };
                plan.record_probe(delivered);
            }
        }
        InjectEvent::FbtPressure { ways, window } => {
            mem.inject_fbt_pressure(ways, window);
        }
        InjectEvent::Remap { asid, vpn } => {
            let ok = match os.remap_page(ProcessId(asid.0), vpn) {
                Ok(sd) => {
                    mem.apply_shootdown(&sd, at);
                    true
                }
                Err(_) => false,
            };
            plan.record_remap(ok);
        }
        InjectEvent::Splinter { asid, vpn } => {
            let ok = match os.splinter(ProcessId(asid.0), vpn) {
                Ok(sd) => {
                    mem.apply_shootdown(&sd, at);
                    true
                }
                Err(_) => false,
            };
            plan.record_splinter(ok);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ServiceConfig {
        ServiceConfig {
            tenants: 4,
            quantum: 256,
            kernels_per_tenant: 2,
            waves_per_kernel: 2,
            accesses_per_wave: 16,
            pages_per_tenant: 8,
            churn_period: 3,
            mean_arrival_gap: 500,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn completes_all_work_and_conserves_stalls() {
        let rep = run_service(&small(), SystemConfig::vc_with_opt().with_paranoid());
        let expected = 4 * 2 * 2 * 16;
        assert_eq!(rep.accesses, expected);
        assert_eq!(rep.faults, 0);
        assert!(rep.cycles > 0);
        assert!(rep.evictions > 0, "churn must fire at this period");
        assert!(rep.context_switches > 0);
        assert!(rep.fairness > 0.0 && rep.fairness <= 1.0);
        rep.check_stall_conservation();
        for t in &rep.per_tenant {
            assert_eq!(t.accesses, expected / 4);
            assert!(t.p99_stall >= 0.0);
        }
    }

    #[test]
    fn byte_identical_replay_from_the_seed() {
        let a = run_service(&small(), SystemConfig::vc_with_opt());
        let b = run_service(&small(), SystemConfig::vc_with_opt());
        assert_eq!(a, b, "same seed must replay identically");
        let other = ServiceConfig { seed: 7, ..small() };
        let c = run_service(&other, SystemConfig::vc_with_opt());
        assert_ne!(a.p99_stall.to_bits(), c.p99_stall.to_bits());
    }

    #[test]
    fn every_design_survives_churn_under_paranoia() {
        for sys in [
            SystemConfig::ideal_mmu(),
            SystemConfig::baseline_512(),
            SystemConfig::vc_without_opt(),
            SystemConfig::vc_with_opt(),
            SystemConfig::l1_only_vc_32(),
        ] {
            let rep = run_service(&small(), sys.with_paranoid());
            assert_eq!(rep.faults, 0, "{}: unexpected faults", rep.design);
            rep.check_stall_conservation();
        }
    }

    #[test]
    fn quantum_zero_is_effectively_one_access_slices() {
        // A tiny quantum forces a context switch at nearly every slice;
        // the run must still complete and stay conservative.
        let sc = ServiceConfig {
            quantum: 1,
            ..small()
        };
        let rep = run_service(&sc, SystemConfig::baseline_512().with_paranoid());
        assert_eq!(rep.accesses, 4 * 2 * 2 * 16);
        assert!(rep.context_switches >= rep.evictions);
    }

    #[test]
    fn injection_runs_stay_clean() {
        let sys = SystemConfig::vc_with_opt()
            .with_paranoid()
            .with_inject(gvc::InjectConfig::uniform(5_000, 9));
        let sc = ServiceConfig {
            kernels_per_tenant: 4,
            ..small()
        };
        let rep = run_service(&sc, sys);
        assert!(rep.injected.is_some());
        rep.check_stall_conservation();
    }
}
