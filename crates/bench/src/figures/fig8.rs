//! Figure 8: the virtual cache hierarchy as a bandwidth filter —
//! shared IOMMU TLB accesses per cycle, baseline vs proposal.

use crate::runner::{keys_for, mean, prefetch, run};
use gvc::SystemConfig;
use gvc_workloads::{Scale, WorkloadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One workload's before/after access rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Baseline mean IOMMU accesses per cycle.
    pub baseline: f64,
    /// Baseline standard deviation.
    pub baseline_std: f64,
    /// Virtual-hierarchy mean accesses per cycle.
    pub virtual_cache: f64,
    /// Virtual-hierarchy standard deviation.
    pub virtual_std: f64,
    /// Fraction of would-be translation traffic filtered by cache hits.
    pub filter_ratio: f64,
}

/// The whole figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// Per-workload rows.
    pub rows: Vec<Row>,
    /// Mean virtual-hierarchy access rate (the paper reports < 0.3).
    pub avg_virtual: f64,
    /// Mean filter ratio.
    pub avg_filter: f64,
}

/// Runs the experiment.
pub fn collect(scale: Scale, seed: u64) -> Fig8 {
    prefetch(&keys_for(
        &WorkloadId::all(),
        &[
            SystemConfig::baseline_infinite_bandwidth(),
            SystemConfig::vc_with_opt(),
        ],
        scale,
        seed,
    ));
    let mut rows = Vec::new();
    for id in WorkloadId::all() {
        let base = run(id, SystemConfig::baseline_infinite_bandwidth(), scale, seed);
        let vc = run(id, SystemConfig::vc_with_opt(), scale, seed);
        rows.push(Row {
            workload: id.name().to_string(),
            baseline: base.mem.iommu_rate.mean_per_cycle(),
            baseline_std: base.mem.iommu_rate.std_dev_per_cycle(),
            virtual_cache: vc.mem.iommu_rate.mean_per_cycle(),
            virtual_std: vc.mem.iommu_rate.std_dev_per_cycle(),
            filter_ratio: vc.mem.filter_ratio(),
        });
    }
    let avg_virtual = mean(&rows.iter().map(|r| r.virtual_cache).collect::<Vec<_>>());
    let avg_filter = mean(&rows.iter().map(|r| r.filter_ratio).collect::<Vec<_>>());
    Fig8 {
        rows,
        avg_virtual,
        avg_filter,
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: IOMMU TLB accesses per cycle — baseline vs virtual cache hierarchy"
        )?;
        writeln!(
            f,
            "{:<14} {:>9} {:>8} {:>9} {:>8} {:>9}",
            "workload", "base", "±sigma", "virtual", "±sigma", "filtered"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>9.3} {:>8.3} {:>9.3} {:>8.3} {:>8.0}%",
                r.workload,
                r.baseline,
                r.baseline_std,
                r.virtual_cache,
                r.virtual_std,
                r.filter_ratio * 100.0
            )?;
        }
        writeln!(
            f,
            "avg virtual-hierarchy rate: {:.3}/cycle (paper: <0.3); avg traffic filtered: {:.0}%",
            self.avg_virtual,
            self.avg_filter * 100.0
        )
    }
}
