//! `backprop` — neural-network back-propagation (Rodinia).
//!
//! A forward pass (input units × weight rows, semi-coalesced) and a
//! backward weight-update pass. Accumulations target a small hidden
//! layer that stays cache-hot. Regular enough to sit in the paper's
//! low-translation-bandwidth group.

use crate::arrays::DevArray;
use crate::{Scale, Workload};
use gvc_gpu::kernel::{Kernel, KernelSource, WaveOp};
use gvc_mem::{Asid, OsLite};

const HIDDEN: u64 = 16;

struct BackpropSource {
    asid: Asid,
    input: DevArray,   // n f32
    weights: DevArray, // n * HIDDEN f32
    hidden: DevArray,  // HIDDEN f32 (hot)
    n: u64,
    phase: u32,
}

impl KernelSource for BackpropSource {
    fn name(&self) -> &str {
        "backprop"
    }

    fn next_kernel(&mut self) -> Option<Kernel> {
        if self.phase >= 2 {
            return None;
        }
        let backward = self.phase == 1;
        self.phase += 1;
        let name = if backward {
            "backprop_bwd"
        } else {
            "backprop_fwd"
        };
        let mut b = Kernel::builder(name, self.asid);
        for u0 in (0..self.n).step_by(32) {
            let units: Vec<u64> = (u0..(u0 + 32).min(self.n)).collect();
            let mut ops = vec![
                // Input activations: coalesced.
                WaveOp::read(units.iter().map(|&u| self.input.addr(u)).collect()),
                // Weight rows: each lane reads its unit's 64 B row.
                WaveOp::read(
                    units
                        .iter()
                        .map(|&u| self.weights.addr(u * HIDDEN))
                        .collect(),
                ),
                WaveOp::compute(HIDDEN as u32 * 2),
                // Hidden-layer accumulation (hot line).
                WaveOp::read((0..HIDDEN / 8).map(|h| self.hidden.addr(h * 8)).collect()),
            ];
            if backward {
                // Weight update writes the row back.
                ops.push(WaveOp::write(
                    units
                        .iter()
                        .map(|&u| self.weights.addr(u * HIDDEN))
                        .collect(),
                ));
            } else {
                ops.push(WaveOp::write(vec![self.hidden.addr(0)]));
            }
            b = b.wave(ops);
        }
        Some(b.build())
    }
}

/// Builds the workload.
pub fn build(scale: Scale, _seed: u64, thp: bool) -> Workload {
    let n = scale.apply(64 * 1024, 4096);
    let mut os = OsLite::new(512 << 20);
    os.set_huge_alignment(thp);
    let pid = os.create_process();
    let input = DevArray::alloc(&mut os, pid, n, 4);
    let weights = DevArray::alloc(&mut os, pid, n * HIDDEN, 4);
    let hidden = DevArray::alloc(&mut os, pid, HIDDEN.max(64), 4);
    Workload {
        os,
        source: Box::new(BackpropSource {
            asid: pid.asid(),
            input,
            weights,
            hidden,
            n,
            phase: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phases() {
        let mut w = build(Scale::test(), 0, false);
        assert_eq!(w.source.next_kernel().unwrap().name, "backprop_fwd");
        assert_eq!(w.source.next_kernel().unwrap().name, "backprop_bwd");
        assert!(w.source.next_kernel().is_none());
    }
}
