//! Long-horizon soak supervisor (`repro soak`): drives one
//! [`SoakSim`] per design for billions of simulated cycles, writing
//! versioned checkpoints at a configurable epoch cadence and
//! recovering from crashed or hung epochs by restoring the last good
//! checkpoint.
//!
//! The recovery contract, enforced by `tests/tests/soak.rs` and the CI
//! smoke: a run that is killed (crash drill via `--kill-after`, a real
//! signal, or an injected `--fault-epoch` panic) and then resumed from
//! its on-disk checkpoint produces a final report **byte-identical**
//! to an uninterrupted run — at any checkpoint cadence and for any
//! `--jobs` value. That works because every epoch is a pure function
//! of the checkpoint before it: the simulation spills its streaming
//! stats at *every* epoch boundary regardless of cadence, so the
//! accumulation order never depends on where the run was cut.
//!
//! Supervision model (per design cell):
//!
//! 1. Load `soak_<design>.ckpt.json` from `--state DIR` if present
//!    (schema version and config validated), else start at cycle 0.
//! 2. Run one epoch inside `catch_unwind`, under an optional per-epoch
//!    wall-clock watchdog (`--epoch-wall-ms`).
//! 3. On a panic or a watchdog overrun: restore the last good
//!    checkpoint into a freshly built simulation and retry after a
//!    deterministic seeded backoff, up to `--retries` attempts per
//!    epoch. Backoff telemetry goes to stderr only — never into the
//!    report, which must stay byte-identical to a fault-free run.
//! 4. On success: snapshot (the new recovery point) and persist it at
//!    the `--checkpoint-every` cadence.
//! 5. Poll the [`crate::signals`] latch at every boundary: a
//!    SIGINT/SIGTERM writes a final checkpoint plus a partial report
//!    flagged `truncated`.
//!
//! Cells are computed by the same claim-counter worker pool as the
//! tenants sweep and assembled serially in design order.

use crate::signals;
use gvc::SystemConfig;
use gvc_gpu::{SoakCheckpoint, SoakConfig, SoakReport, SoakSim, SOAK_CHECKPOINT_VERSION};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default designs for the soak: the paper's baseline and the full
/// virtual-cache point, the two ends of the translation-bandwidth
/// spectrum.
pub const DEFAULT_SOAK_DESIGNS: [&str; 2] = ["baseline-512", "vc"];

/// A deliberate fault for crash-recovery drills
/// (`--fault-epoch E:K[:hang]`): the `E`-th epoch (1-based) fails its
/// first `K` attempts — by panicking, or by overrunning the wall
/// watchdog when `hang` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which epoch to sabotage (1-based: `1` is the first epoch run).
    pub epoch: u64,
    /// How many attempts of that epoch to kill.
    pub kills: u32,
    /// Hang (sleep past the wall budget) instead of panicking.
    pub hang: bool,
}

impl FaultSpec {
    /// Parses `E:K` or `E:K:hang`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!("expected EPOCH:KILLS[:hang], got {s:?}"));
        }
        let epoch: u64 = parts[0]
            .parse()
            .map_err(|_| format!("epoch must be an unsigned integer, got {:?}", parts[0]))?;
        if epoch == 0 {
            return Err("epoch is 1-based; there is no epoch 0 to sabotage".into());
        }
        let kills: u32 = parts[1]
            .parse()
            .map_err(|_| format!("kill count must be an unsigned integer, got {:?}", parts[1]))?;
        if kills == 0 {
            return Err("a zero kill count injects nothing (omit the flag)".into());
        }
        let hang = match parts.get(2) {
            None => false,
            Some(&"hang") => true,
            Some(other) => {
                return Err(format!("expected `hang` as the third field, got {other:?}"))
            }
        };
        Ok(FaultSpec { epoch, kills, hang })
    }
}

/// What to soak (CLI-shaped).
#[derive(Debug, Clone)]
pub struct SoakSpec {
    /// Design names, one cell each (validated by the CLI).
    pub designs: Vec<String>,
    /// The per-cell simulation shape (tenants, epoch length, horizon,
    /// seed, ...).
    pub cfg: SoakConfig,
    /// Run under the paranoid invariant checker (swept at every epoch
    /// boundary regardless; this also arms the per-access checks).
    pub paranoid: bool,
    /// TLB-miss fault-injection rate in [0, 1] (`--inject`).
    pub inject_rate: Option<f64>,
    /// Worker count for the cell pool.
    pub jobs: usize,
    /// Persist a checkpoint every this many epochs (`>= 1`).
    pub checkpoint_every: u64,
    /// Checkpoint directory; `None` keeps recovery points in memory
    /// only (no resume across processes).
    pub state_dir: Option<String>,
    /// Per-epoch retry budget for crash recovery.
    pub retries: u32,
    /// Crash drill: checkpoint and stop after this many epochs with
    /// [`signals::EXIT_KILLED`]; requires `state_dir`.
    pub kill_after: Option<u64>,
    /// Deliberate fault injection for recovery drills.
    pub fault: Option<FaultSpec>,
    /// Per-epoch wall-clock budget in ms; an overrunning epoch is
    /// treated as hung, discarded, and retried from the last
    /// checkpoint. (In-process supervision detects the overrun when
    /// the epoch returns; it cannot preempt a truly wedged one.)
    pub epoch_wall_ms: Option<u64>,
}

impl Default for SoakSpec {
    fn default() -> Self {
        SoakSpec {
            designs: DEFAULT_SOAK_DESIGNS.iter().map(|s| s.to_string()).collect(),
            cfg: SoakConfig::default(),
            paranoid: false,
            inject_rate: None,
            jobs: 1,
            checkpoint_every: 1,
            state_dir: None,
            retries: 1,
            kill_after: None,
            fault: None,
            epoch_wall_ms: None,
        }
    }
}

/// How the soak ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakOutcome {
    /// Every cell reached its horizon.
    Completed,
    /// A shutdown signal arrived; the figure is a truncated partial.
    Truncated,
    /// The `--kill-after` crash drill stopped the run; no figure, the
    /// checkpoints on disk are the output.
    Killed {
        /// The epoch the drill stopped at.
        at_epoch: u64,
    },
}

/// The figure: one [`SoakReport`] per design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Soak {
    /// Master seed.
    pub seed: u64,
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
    /// Requested horizon in epochs.
    pub horizon_epochs: u64,
    /// Set when a signal cut the run short (partial cells).
    pub truncated: bool,
    /// One report per design, in request order.
    pub cells: Vec<SoakReport>,
}

/// Result of a whole soak invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakRun {
    /// The figure; `None` for a `--kill-after` crash drill (the
    /// checkpoints are the output).
    pub figure: Option<Soak>,
    /// How the run ended.
    pub outcome: SoakOutcome,
    /// Epochs re-run after a crash or hang across all cells (recovery
    /// telemetry; never part of the figure).
    pub recoveries: u32,
}

/// Deterministic seeded retry backoff for epoch recovery, on the same
/// capped-exponential schedule as [`crate::runner::retry_backoff_ms`]:
/// base `4 << (attempt-1)` ms capped at 256 ms, jittered into
/// `[base/2, 3*base/2)` by a stream seeded from (design, seed, epoch).
pub fn recovery_backoff_ms(design: &str, seed: u64, epoch: u64, attempt: u32) -> u64 {
    let base = (4u64 << attempt.saturating_sub(1).min(6)).min(256);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    design.hash(&mut h);
    seed.hash(&mut h);
    epoch.hash(&mut h);
    let mut rng = gvc_engine::SimRng::seeded(h.finish() ^ u64::from(attempt));
    rng.range(base / 2, base + base / 2)
}

/// The checkpoint file for one design cell.
pub fn checkpoint_path(state_dir: &str, design: &str) -> String {
    format!("{state_dir}/soak_{design}.ckpt.json")
}

/// Writes a checkpoint atomically (tmp + rename) after guarding the
/// JSON tree against non-finite numbers.
pub fn save_checkpoint(path: &str, ckpt: &SoakCheckpoint) -> Result<(), String> {
    let value = ckpt.to_value();
    crate::assert_json_finite("soak checkpoint", &value);
    let json = serde_json::to_string_pretty(&value).map_err(|e| format!("{path}: {e}"))?;
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))
}

/// Loads a checkpoint if the file exists, validating the schema
/// version *before* deserializing the rest (a future-versioned file
/// must be rejected with its version named, not a field soup).
pub fn load_checkpoint(path: &str) -> Result<Option<SoakCheckpoint>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let version = match &value {
        serde::Value::Map(entries) => {
            entries
                .iter()
                .find(|(k, _)| k == "version")
                .and_then(|(_, v)| match v {
                    serde::Value::UInt(n) => Some(*n),
                    _ => None,
                })
        }
        _ => None,
    };
    match version {
        None => return Err(format!("{path}: not a soak checkpoint (no version field)")),
        Some(v) if v != u64::from(SOAK_CHECKPOINT_VERSION) => {
            return Err(format!(
                "{path}: checkpoint schema version {v} (this binary writes \
                 {SOAK_CHECKPOINT_VERSION}); refusing to guess"
            ))
        }
        Some(_) => {}
    }
    let ckpt = SoakCheckpoint::from_value(&value)
        .map_err(|e| format!("{path}: malformed checkpoint: {e}"))?;
    Ok(Some(ckpt))
}

/// Builds the memory-system config for one cell.
fn sys_for(spec: &SoakSpec, design: &str) -> SystemConfig {
    let mut sys = crate::trace::design_by_name(design)
        .unwrap_or_else(|| panic!("unknown design {design:?} (validated at the CLI)"));
    if spec.paranoid {
        sys = sys.with_paranoid();
    }
    if let Some(rate) = spec.inject_rate {
        let ppm = (rate * 1e6).round() as u32;
        sys = sys.with_inject(gvc::InjectConfig::uniform(ppm, spec.cfg.seed));
    }
    sys
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One cell's supervision outcome.
struct CellResult {
    /// `None` when the crash drill stopped the cell before its horizon.
    report: Option<SoakReport>,
    recoveries: u32,
    killed_at: Option<u64>,
    truncated: bool,
}

/// Supervises one design cell (see [module docs](self)).
fn run_cell(spec: &SoakSpec, design: &str) -> Result<CellResult, String> {
    let cfg = spec.cfg;
    let path = spec
        .state_dir
        .as_deref()
        .map(|dir| checkpoint_path(dir, design));
    let mut sim = SoakSim::new(&cfg, sys_for(spec, design));
    let mut last: SoakCheckpoint = match path.as_deref().map(load_checkpoint).transpose()?.flatten()
    {
        Some(ckpt) => {
            if ckpt.cfg != cfg {
                return Err(format!(
                    "{}: checkpoint was taken with a different soak configuration; \
                     resume with the original flags or remove the state file",
                    path.as_deref().unwrap_or(design),
                ));
            }
            eprintln!(
                "soak[{design}]: resuming from epoch-{} checkpoint",
                ckpt.epoch
            );
            sim.restore(&ckpt);
            ckpt
        }
        // The epoch-0 snapshot: recovery of a first-epoch crash
        // restarts from cycle 0, like any other epoch.
        None => sim.snapshot(),
    };

    let mut recoveries = 0u32;
    let mut fault_kills_left = spec.fault.map_or(0, |f| f.kills);
    loop {
        if sim.done() {
            if let Some(p) = &path {
                // A finished cell must not leave a resume point: a
                // later fresh run would silently skip to the horizon.
                let _ = std::fs::remove_file(p);
            }
            return Ok(CellResult {
                report: Some(sim.finish()),
                recoveries,
                killed_at: None,
                truncated: false,
            });
        }
        if signals::triggered() {
            let ckpt = sim.snapshot();
            if let Some(p) = &path {
                save_checkpoint(p, &ckpt)?;
            }
            return Ok(CellResult {
                report: Some(sim.finish_truncated()),
                recoveries,
                killed_at: None,
                truncated: true,
            });
        }
        if let Some(k) = spec.kill_after {
            if sim.epoch() >= k {
                let ckpt = sim.snapshot();
                let p = path
                    .as_ref()
                    .expect("validated: --kill-after requires --state");
                save_checkpoint(p, &ckpt)?;
                return Ok(CellResult {
                    report: None,
                    recoveries,
                    killed_at: Some(sim.epoch()),
                    truncated: false,
                });
            }
        }

        let next = sim.epoch() + 1;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let injected = match spec.fault {
                Some(f) if f.epoch == next && fault_kills_left > 0 => {
                    fault_kills_left -= 1;
                    Some(f.hang)
                }
                _ => None,
            };
            let t0 = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                match injected {
                    Some(true) => {
                        // Simulate a wedged epoch: return long after
                        // the wall budget so the watchdog fires.
                        let budget = spec
                            .epoch_wall_ms
                            .expect("validated: hang faults need --epoch-wall-ms");
                        std::thread::sleep(Duration::from_millis(budget + 50));
                    }
                    Some(false) => panic!("injected soak fault: epoch {next} (crash drill)"),
                    None => {}
                }
                sim.run_epoch();
            }));
            let hung = spec
                .epoch_wall_ms
                .is_some_and(|ms| t0.elapsed().as_millis() as u64 > ms);
            match outcome {
                Ok(()) if !hung => break,
                bad => {
                    let why = match &bad {
                        Ok(()) => "wall watchdog: epoch overran its budget".to_string(),
                        Err(p) => format!("epoch panicked: {}", panic_message(p.as_ref())),
                    };
                    if attempt > spec.retries {
                        return Err(format!(
                            "soak[{design}]: epoch {next} failed after {attempt} attempt(s) \
                             (retry budget {}): {why}",
                            spec.retries
                        ));
                    }
                    let delay = recovery_backoff_ms(design, cfg.seed, next, attempt);
                    eprintln!(
                        "soak[{design}]: epoch {next} attempt {attempt} failed ({why}); \
                         restoring epoch-{} checkpoint, retrying in {delay} ms",
                        last.epoch
                    );
                    std::thread::sleep(Duration::from_millis(delay));
                    // The panicked simulation may be mid-epoch and is
                    // unusable; rebuild from scratch and restore.
                    sim = SoakSim::new(&cfg, sys_for(spec, design));
                    sim.restore(&last);
                    recoveries += 1;
                }
            }
        }

        // The epoch closed cleanly: advance the in-memory recovery
        // point, and persist it at the cadence (and at the horizon,
        // which the `done()` arm deletes again after `finish` — kept
        // so a crash *inside* `finish` still resumes).
        last = sim.snapshot();
        if let Some(p) = &path {
            if next.is_multiple_of(spec.checkpoint_every) || sim.done() {
                save_checkpoint(p, &last)?;
            }
        }
    }
}

/// Runs the soak: one supervised cell per design, computed by a
/// claim-counter worker pool and assembled serially in design order
/// (byte-identical for any `jobs`).
pub fn collect(spec: &SoakSpec) -> Result<SoakRun, String> {
    if spec.checkpoint_every == 0 {
        return Err("checkpoint cadence must be at least 1 epoch".into());
    }
    if spec.kill_after.is_some() && spec.state_dir.is_none() {
        return Err("--kill-after requires --state DIR (resume needs a checkpoint on disk)".into());
    }
    if spec.fault.is_some_and(|f| f.hang) && spec.epoch_wall_ms.is_none() {
        return Err("a hang fault needs --epoch-wall-ms to be detectable".into());
    }
    if let Some(dir) = &spec.state_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }

    let results: Vec<Mutex<Option<Result<CellResult, String>>>> =
        spec.designs.iter().map(|_| Mutex::new(None)).collect();
    let workers = spec.jobs.max(1).min(spec.designs.len().max(1));
    if workers <= 1 {
        for (design, slot) in spec.designs.iter().zip(&results) {
            *slot.lock().expect("no worker panicked") = Some(run_cell(spec, design));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (designs, results, next) = (&spec.designs, &results, &next);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(design) = designs.get(i) else { break };
                    let cell = run_cell(spec, design);
                    *results[i].lock().expect("no worker panicked") = Some(cell);
                });
            }
        });
    }

    let mut cells = Vec::new();
    let mut recoveries = 0u32;
    let mut truncated = false;
    let mut killed_at = None;
    for slot in results {
        let cell = slot
            .into_inner()
            .expect("no worker panicked")
            .expect("every cell was supervised")?;
        recoveries += cell.recoveries;
        truncated |= cell.truncated;
        if let Some(e) = cell.killed_at {
            killed_at = Some(e);
        }
        if let Some(report) = cell.report {
            cells.push(report);
        }
    }
    if let Some(at_epoch) = killed_at {
        return Ok(SoakRun {
            figure: None,
            outcome: SoakOutcome::Killed { at_epoch },
            recoveries,
        });
    }
    let outcome = if truncated {
        SoakOutcome::Truncated
    } else {
        SoakOutcome::Completed
    };
    Ok(SoakRun {
        figure: Some(Soak {
            seed: spec.cfg.seed,
            epoch_cycles: spec.cfg.epoch_cycles,
            horizon_epochs: spec.cfg.horizon_epochs,
            truncated,
            cells,
        }),
        outcome,
        recoveries,
    })
}

impl fmt::Display for Soak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Long-horizon soak ({} epochs x {} cycles, seed {}){}",
            self.horizon_epochs,
            self.epoch_cycles,
            self.seed,
            if self.truncated {
                " [TRUNCATED by signal - partial]"
            } else {
                ""
            }
        )?;
        writeln!(
            f,
            "{:<16} {:>7} {:>12} {:>10} {:>10} {:>9} {:>7} {:>8}",
            "design", "epochs", "cycles", "thr/kcyc", "p99stall", "fairness", "evict", "faults"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<16} {:>7} {:>12} {:>10.2} {:>10.0} {:>9.3} {:>7} {:>8}",
                c.design,
                c.epochs,
                c.cycles,
                c.throughput,
                c.p99_stall,
                c.fairness,
                c.evictions,
                c.faults
            )?;
        }
        for c in &self.cells {
            writeln!(f, "{} long-horizon curve (per-epoch):", c.design)?;
            // At most 16 rows: stride through long curves.
            let stride = (c.epoch_curve.len().div_ceil(16)).max(1);
            for p in c.epoch_curve.iter().step_by(stride) {
                writeln!(
                    f,
                    "  epoch {:>6}  acc {:>10}  p99 {:>7.0}  evict {:>5}",
                    p.epoch, p.accesses, p.p99_stall, p.evictions
                )?;
            }
        }
        write!(
            f,
            "thr/kcyc = aggregate line accesses per 1000 cycles; stats stream through \
             bounded per-epoch spills"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: nothing here may touch the crate::signals latch — these
    // run in the same process as the tenants sweep tests, which poll
    // it. Signal-path coverage lives in tests/tests/soak.rs.

    fn tiny_spec(dir: Option<String>) -> SoakSpec {
        SoakSpec {
            designs: vec!["vc".into()],
            cfg: SoakConfig {
                tenants: 2,
                quantum: 256,
                waves_per_kernel: 2,
                accesses_per_wave: 16,
                pages_per_tenant: 8,
                churn_period: 5,
                mean_arrival_gap: 800,
                epoch_cycles: 20_000,
                horizon_epochs: 4,
                ..SoakConfig::default()
            },
            paranoid: true,
            state_dir: dir,
            ..SoakSpec::default()
        }
    }

    #[test]
    fn fault_spec_parses_and_rejects() {
        assert_eq!(
            FaultSpec::parse("3:2").unwrap(),
            FaultSpec {
                epoch: 3,
                kills: 2,
                hang: false
            }
        );
        assert_eq!(
            FaultSpec::parse("1:1:hang").unwrap(),
            FaultSpec {
                epoch: 1,
                kills: 1,
                hang: true
            }
        );
        assert!(FaultSpec::parse("0:1").is_err(), "epoch 0 is not runnable");
        assert!(FaultSpec::parse("1:0").is_err(), "zero kills is a no-op");
        assert!(FaultSpec::parse("1").is_err());
        assert!(FaultSpec::parse("1:1:boom").is_err());
        assert!(FaultSpec::parse("x:1").is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 1..=10u32 {
            let base = (4u64 << (attempt - 1).min(6)).min(256);
            let d = recovery_backoff_ms("vc", 42, 3, attempt);
            assert_eq!(d, recovery_backoff_ms("vc", 42, 3, attempt));
            assert!(d >= base / 2 && d < base + base / 2);
        }
        assert_ne!(
            (1..=6)
                .map(|a| recovery_backoff_ms("vc", 42, 3, a))
                .collect::<Vec<_>>(),
            (1..=6)
                .map(|a| recovery_backoff_ms("baseline-512", 42, 3, a))
                .collect::<Vec<_>>(),
            "distinct designs must decorrelate the schedule"
        );
    }

    #[test]
    fn crash_recovery_run_equals_clean_run() {
        let clean = collect(&tiny_spec(None)).expect("clean soak");
        assert_eq!(clean.outcome, SoakOutcome::Completed);
        assert_eq!(clean.recoveries, 0);

        // Kill epoch 3 twice; the supervisor restores and retries.
        let mut spec = tiny_spec(None);
        spec.fault = Some(FaultSpec {
            epoch: 3,
            kills: 2,
            hang: false,
        });
        spec.retries = 3;
        let recovered = collect(&spec).expect("recovered soak");
        assert_eq!(recovered.recoveries, 2, "both kills were recovered");
        assert_eq!(
            recovered.figure, clean.figure,
            "recovery must not perturb the report"
        );

        // Exhausting the budget surfaces a structured error.
        let mut spec = tiny_spec(None);
        spec.fault = Some(FaultSpec {
            epoch: 2,
            kills: 5,
            hang: false,
        });
        spec.retries = 1;
        let err = collect(&spec).expect_err("budget exhausted");
        assert!(err.contains("retry budget 1"), "got: {err}");
        assert!(err.contains("epoch 2"), "got: {err}");
    }

    #[test]
    fn checkpoint_files_round_trip_and_validate() {
        let dir = std::env::temp_dir().join(format!("gvc_soak_ckpt_{}", std::process::id()));
        let dir = dir.to_str().expect("utf-8 temp dir").to_string();
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let spec = tiny_spec(None);
        let mut sim = SoakSim::new(&spec.cfg, sys_for(&spec, "vc"));
        sim.run_epoch();
        let ckpt = sim.snapshot();
        let path = checkpoint_path(&dir, "vc");
        save_checkpoint(&path, &ckpt).unwrap();
        let loaded = load_checkpoint(&path).unwrap().expect("file exists");
        assert_eq!(loaded, ckpt, "JSON round-trip must be lossless");
        assert!(
            load_checkpoint(&checkpoint_path(&dir, "missing"))
                .unwrap()
                .is_none(),
            "a missing file is a fresh start, not an error"
        );

        // A future schema version is refused by name.
        let mut future = ckpt.clone();
        future.version = SOAK_CHECKPOINT_VERSION + 1;
        save_checkpoint(&path, &future).unwrap();
        let err = load_checkpoint(&path).expect_err("future version");
        assert!(err.contains("schema version"), "got: {err}");

        // Garbage is a parse error, not a panic.
        std::fs::write(&path, "{not json").unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::write(&path, "[1, 2]").unwrap();
        let err = load_checkpoint(&path).expect_err("no version field");
        assert!(err.contains("version"), "got: {err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_disk_matches_uninterrupted_at_both_cadences() {
        let clean = collect(&tiny_spec(None)).expect("clean soak");
        for cadence in [1u64, 2] {
            let dir = std::env::temp_dir().join(format!(
                "gvc_soak_resume_{}_{}",
                cadence,
                std::process::id()
            ));
            let dir = dir.to_str().expect("utf-8 temp dir").to_string();
            let _ = std::fs::remove_dir_all(&dir);

            let mut drill = tiny_spec(Some(dir.clone()));
            drill.checkpoint_every = cadence;
            drill.kill_after = Some(2);
            let killed = collect(&drill).expect("crash drill");
            assert_eq!(killed.outcome, SoakOutcome::Killed { at_epoch: 2 });
            assert!(killed.figure.is_none(), "a drill leaves only checkpoints");

            let mut resume = tiny_spec(Some(dir.clone()));
            resume.checkpoint_every = cadence;
            let resumed = collect(&resume).expect("resume");
            assert_eq!(resumed.outcome, SoakOutcome::Completed);
            assert_eq!(
                resumed.figure, clean.figure,
                "kill-and-resume at cadence {cadence} must be byte-identical"
            );
            assert!(
                !std::path::Path::new(&checkpoint_path(&dir, "vc")).exists(),
                "a completed cell must clean up its resume point"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
