//! The proposed GPU virtual cache hierarchy (Figure 6, §4).
//!
//! There are no per-CU TLBs: lane requests go straight to the virtual
//! L1, then the virtual L2. Address translation happens *only* on L2
//! misses — at the shared IOMMU TLB, optionally backed by the FBT as a
//! second-level TLB ("VC With OPT") — and the resulting physical page
//! is checked against the backward table:
//!
//! * **BT hit, same leading VA** — the page is known; fetch the line
//!   from memory, set its presence bit, cache it under the leading VA.
//! * **BT hit, different leading VA** — a *synonym* access. Read-write
//!   synonyms fault (the paper's conservative policy); read-only
//!   synonyms replay through the leading virtual address: present
//!   lines hit the L2 under the leading name, absent lines are fetched
//!   and cached under the leading name.
//! * **BT miss** — the accessed virtual page becomes the physical
//!   page's leading VA; a new BT/FT entry is allocated (possibly
//!   evicting a victim whose cached lines are invalidated selectively
//!   via its bit vector, with the L1 invalidation filters deciding
//!   which L1s must flush).

use super::{AccessFault, AccessResult, LineAccess, MemorySystem};
use crate::config::SynonymPolicy;
use crate::fbt::{BtEntry, BtIndex};
use gvc_cache::cache::MshrOutcome;
use gvc_cache::LineKey;
use gvc_engine::time::{Cycle, Duration};
use gvc_engine::TraceCause;
use gvc_mem::{OsLite, Perms, Vpn, LINES_PER_PAGE};

/// Outcome of the translation + backward-table resolution that follows
/// a virtual L2 miss.
enum Resolution {
    /// Translation or synonym policy failed.
    Fault(Cycle, AccessFault),
    /// The line may already be cached under the leading VA (synonym
    /// replay, or a presence bit raced): access the L2 again at `lkey`.
    Replay {
        lkey: LineKey,
        idx: BtIndex,
        t: Cycle,
    },
    /// The line is not cached anywhere: fetch from memory and fill
    /// under the leading VA.
    Fetch {
        lkey: LineKey,
        idx: BtIndex,
        perms: Perms,
        t: Cycle,
    },
}

impl MemorySystem {
    pub(super) fn access_virtual(
        &mut self,
        mut a: LineAccess,
        os: &OsLite,
        use_fbt_tlb: bool,
    ) -> AccessResult {
        // Dynamic synonym remapping (§4.3): known non-leading pages
        // are rewritten to their leading names before the L1 lookup,
        // so repeated synonym accesses become ordinary virtual hits.
        // Stale mappings are impossible across unmaps because every
        // unmap's shootdown flushes the tables.
        if self.cfg.dynamic_synonym_remapping {
            if let Some(leading) = self.srt[a.cu].remap(a.asid, a.vaddr.vpn()) {
                a.asid = leading.asid;
                a.vaddr = leading.vpn.with_offset_of(a.vaddr);
                self.counters.synonym_remaps.inc();
            }
        }
        if a.is_write {
            self.write_virtual(a, os, use_fbt_tlb)
        } else {
            self.read_virtual(a, os, use_fbt_tlb)
        }
    }

    fn read_virtual(&mut self, a: LineAccess, os: &OsLite, use_fbt_tlb: bool) -> AccessResult {
        let key = Self::virt_key(a.asid, a.vaddr);
        let l1_done = a.at + Duration::new(self.cfg.lat.l1_hit);
        if let Some(line) = self.l1[a.cu].lookup(key, a.at) {
            self.tr_stage(TraceCause::L1Lookup, l1_done);
            if !line.perms.covers(Perms::READ) {
                self.counters.perm_faults.inc();
                return AccessResult::fault(l1_done, AccessFault::PermissionDenied);
            }
            self.counters.filtered_at_l1.inc();
            let ready = match Self::hit_fill_wait(&self.l1_mshr[a.cu], &line, key, a.at) {
                Some(d) => {
                    let ready = d.max(l1_done);
                    self.tr_stage(TraceCause::MshrWait, ready);
                    ready
                }
                None => l1_done,
            };
            return AccessResult::ok(ready);
        }
        if let MshrOutcome::Merged { fill_done } = self.l1_mshr[a.cu].check(key, a.at) {
            self.counters.filtered_at_l1.inc();
            self.tr_stage(TraceCause::MshrWait, fill_done);
            return AccessResult::ok(fill_done);
        }
        self.tr_stage(TraceCause::L1Lookup, l1_done);

        // Virtual L2.
        let l2_arrival = l1_done + self.noc.cu_to_l2();
        self.tr_stage(TraceCause::Noc, l2_arrival);
        let service = self.l2.reserve_port(key, l2_arrival);
        let l2_done = service + Duration::new(self.cfg.lat.l2_hit);
        if let Some(line) = self.l2.lookup(key, service) {
            self.tr_stage(TraceCause::L2Lookup, l2_done);
            if !line.perms.covers(Perms::READ) {
                self.counters.perm_faults.inc();
                return AccessResult::fault(l2_done, AccessFault::PermissionDenied);
            }
            self.counters.filtered_at_l2.inc();
            let ready = match Self::hit_fill_wait(&self.l2_mshr, &line, key, service) {
                Some(d) => {
                    let ready = d.max(l2_done);
                    self.tr_stage(TraceCause::MshrWait, ready);
                    ready
                }
                None => l2_done,
            };
            let at_cu = ready + self.noc.cu_to_l2();
            self.tr_stage(TraceCause::Noc, at_cu);
            self.insert_l1(a.cu, key, line.perms, at_cu, true);
            self.l1_mshr[a.cu].register(key, at_cu);
            return AccessResult::ok(at_cu);
        }
        if let MshrOutcome::Merged { fill_done } = self.l2_mshr.check(key, service) {
            self.counters.filtered_at_l2.inc();
            self.tr_stage(TraceCause::L2Lookup, service);
            self.tr_stage(TraceCause::MshrWait, fill_done);
            let at_cu = fill_done + self.noc.cu_to_l2();
            self.tr_stage(TraceCause::Noc, at_cu);
            if let Some(line) = self.l2.peek(key) {
                self.insert_l1(a.cu, key, line.perms, at_cu, true);
                self.l1_mshr[a.cu].register(key, at_cu);
            }
            return AccessResult::ok(at_cu);
        }
        self.tr_stage(TraceCause::L2Lookup, l2_done);

        // Primary L2 miss: translate and resolve against the BT.
        match self.resolve_translation(&a, l2_done, use_fbt_tlb, os) {
            Resolution::Fault(at, f) => AccessResult::fault(at, f),
            Resolution::Replay { lkey, idx, t } => {
                AccessResult::ok(self.finish_replay(lkey, idx, t, false))
            }
            Resolution::Fetch {
                lkey,
                idx,
                perms,
                t,
            } => {
                let filled = self.fetch_line(t);
                self.fbt.entry_mut(idx).presence.set(a.vaddr.line_in_page());
                self.insert_l2_virtual(lkey, perms, false, filled);
                self.l2_mshr.register(lkey, filled);
                let at_cu = filled + self.noc.cu_to_l2();
                self.tr_stage(TraceCause::Noc, at_cu);
                if lkey == key {
                    self.insert_l1(a.cu, key, perms, at_cu, true);
                    self.l1_mshr[a.cu].register(key, at_cu);
                }
                AccessResult::ok(at_cu)
            }
        }
    }

    fn write_virtual(&mut self, a: LineAccess, os: &OsLite, use_fbt_tlb: bool) -> AccessResult {
        let key = Self::virt_key(a.asid, a.vaddr);
        let ack = a.at + Duration::new(self.cfg.lat.write_ack);
        // Write-through, no-allocate virtual L1: update in place.
        if let Some(line) = self.l1[a.cu].lookup(key, a.at) {
            if !line.perms.covers(Perms::WRITE) {
                self.counters.perm_faults.inc();
                return AccessResult::fault(ack, AccessFault::PermissionDenied);
            }
        }
        self.tr_stage(
            TraceCause::L1Lookup,
            a.at + Duration::new(self.cfg.lat.l1_hit),
        );
        let l2_arrival = a.at + Duration::new(self.cfg.lat.l1_hit) + self.noc.cu_to_l2();
        self.tr_stage(TraceCause::Noc, l2_arrival);
        let service = self.l2.reserve_port(key, l2_arrival);
        self.tr_stage(TraceCause::L2Lookup, service);
        if let Some(line) = self.l2.lookup(key, service) {
            if !line.perms.covers(Perms::WRITE) {
                self.counters.perm_faults.inc();
                return AccessResult::fault(ack, AccessFault::PermissionDenied);
            }
            self.l2.mark_dirty(key);
            self.counters.filtered_at_l2.inc();
            return AccessResult::ok(ack);
        }
        if let MshrOutcome::Merged { .. } = self.l2_mshr.check(key, service) {
            self.l2.mark_dirty(key);
            self.counters.filtered_at_l2.inc();
            return AccessResult::ok(ack);
        }
        let l2_done = service + Duration::new(self.cfg.lat.l2_hit);
        self.tr_stage(TraceCause::L2Lookup, l2_done);
        match self.resolve_translation(&a, l2_done, use_fbt_tlb, os) {
            Resolution::Fault(at, f) => AccessResult::fault(at, f),
            Resolution::Replay { lkey, idx, t } => {
                self.finish_replay(lkey, idx, t, true);
                AccessResult::ok(ack)
            }
            Resolution::Fetch {
                lkey,
                idx,
                perms,
                t,
            } => {
                let filled = self.fetch_line(t);
                self.fbt.entry_mut(idx).presence.set(a.vaddr.line_in_page());
                self.insert_l2_virtual(lkey, perms, true, filled);
                self.l2_mshr.register(lkey, filled);
                AccessResult::ok(ack)
            }
        }
    }

    /// Translation + BT resolution after a primary virtual L2 miss at
    /// `miss_at`.
    fn resolve_translation(
        &mut self,
        a: &LineAccess,
        miss_at: Cycle,
        use_fbt_tlb: bool,
        os: &OsLite,
    ) -> Resolution {
        let vpn = a.vaddr.vpn();
        let io_arrival = miss_at + self.noc.l2_to_iommu();
        self.tr_stage(TraceCause::Noc, io_arrival);
        let resp = {
            let MemorySystem {
                ref mut iommu,
                ref mut fbt,
                ..
            } = *self;
            if use_fbt_tlb {
                let mut hook = |asid, v| fbt.translate(asid, v);
                iommu.translate(a.asid, vpn, io_arrival, os, Some(&mut hook))
            } else {
                iommu.translate(a.asid, vpn, io_arrival, os, None)
            }
        };
        let Some((ppn, page_perms)) = resp.outcome.translation() else {
            self.counters.page_faults.inc();
            return Resolution::Fault(resp.done_at, AccessFault::PageFault);
        };
        if !page_perms.covers(Perms::required_for_write(a.is_write)) {
            self.counters.perm_faults.inc();
            return Resolution::Fault(resp.done_at, AccessFault::PermissionDenied);
        }
        let t_bt = resp.done_at + Duration::new(self.cfg.fbt.lookup_latency);
        self.tr_stage(TraceCause::FbtProbe, t_bt);
        let line = a.vaddr.line_in_page();

        if let Some(idx) = self.fbt.lookup_ppn(ppn) {
            let e = *self.fbt.entry(idx);
            let is_synonym = e.leading.asid != a.asid || e.leading.vpn != vpn;
            if is_synonym {
                self.counters.synonyms_detected.inc();
                let read_write = a.is_write || e.written;
                if read_write && self.cfg.synonym_policy == SynonymPolicy::FaultOnReadWrite {
                    self.counters.rw_synonym_faults.inc();
                    return Resolution::Fault(t_bt, AccessFault::ReadWriteSynonym);
                }
                self.counters.synonym_replays.inc();
                if self.cfg.dynamic_synonym_remapping {
                    // Remember the mapping so the next access from
                    // this CU skips the replay entirely.
                    self.srt[a.cu].install(a.asid, vpn, e.leading);
                }
            }
            if a.is_write {
                self.fbt.entry_mut(idx).written = true;
            }
            let lkey = LineKey::new(
                e.leading.asid,
                e.leading.vpn.raw() * LINES_PER_PAGE + line as u64,
            );
            if e.presence.test(line) {
                Resolution::Replay { lkey, idx, t: t_bt }
            } else {
                Resolution::Fetch {
                    lkey,
                    idx,
                    perms: e.perms,
                    t: t_bt,
                }
            }
        } else {
            // This virtual page becomes the physical page's leading VA.
            let (idx, evicted) = self.fbt.insert(ppn, a.asid, vpn, page_perms);
            if let Some(victim) = evicted {
                self.invalidate_fbt_victim(&victim, t_bt);
            }
            if a.is_write {
                self.fbt.entry_mut(idx).written = true;
            }
            let lkey = LineKey::new(a.asid, vpn.raw() * LINES_PER_PAGE + line as u64);
            Resolution::Fetch {
                lkey,
                idx,
                perms: page_perms,
                t: t_bt,
            }
        }
    }

    /// Replays an access at the leading virtual address: the data is
    /// expected in the L2; if the presence information was
    /// conservative (counter mode), fall back to a fetch.
    fn finish_replay(&mut self, lkey: LineKey, idx: BtIndex, t: Cycle, is_write: bool) -> Cycle {
        let arrival = t + self.noc.l2_to_iommu();
        self.tr_stage(TraceCause::Noc, arrival);
        let service = self.l2.reserve_port(lkey, arrival);
        let l2_done = service + Duration::new(self.cfg.lat.l2_hit);
        if self.l2.lookup(lkey, service).is_some() {
            self.tr_stage(TraceCause::L2Lookup, l2_done);
            if is_write {
                self.l2.mark_dirty(lkey);
            }
            let at_cu = l2_done + self.noc.cu_to_l2();
            self.tr_stage(TraceCause::Noc, at_cu);
            return at_cu;
        }
        if let MshrOutcome::Merged { fill_done } = self.l2_mshr.check(lkey, service) {
            self.tr_stage(TraceCause::L2Lookup, service);
            self.tr_stage(TraceCause::MshrWait, fill_done);
            if is_write {
                self.l2.mark_dirty(lkey);
            }
            let at_cu = fill_done + self.noc.cu_to_l2();
            self.tr_stage(TraceCause::Noc, at_cu);
            return at_cu;
        }
        // Conservative presence (counter mode) or a raced bit: fetch.
        self.tr_stage(TraceCause::L2Lookup, l2_done);
        let perms = self.fbt.entry(idx).perms;
        let filled = self.fetch_line(l2_done);
        let line = lkey.line_in_page();
        let e = self.fbt.entry_mut(idx);
        if !e.presence.is_exact() || !e.presence.test(line) {
            e.presence.set(line);
        }
        self.insert_l2_virtual(lkey, perms, is_write, filled);
        self.l2_mshr.register(lkey, filled);
        let at_cu = filled + self.noc.cu_to_l2();
        self.tr_stage(TraceCause::Noc, at_cu);
        at_cu
    }

    /// Inserts into the virtual L2, keeping the BT's presence
    /// information inclusive: the victim's bit clears, and dirty
    /// victims write back using the BT's physical translation.
    pub(super) fn insert_l2_virtual(
        &mut self,
        key: LineKey,
        perms: Perms,
        dirty: bool,
        now: Cycle,
    ) {
        if let Some(victim) = self.l2.insert(key, perms, dirty, now) {
            let v_vpn = Vpn::new(victim.key.page());
            if let Some(idx) = self.fbt.lookup_va(victim.key.asid, v_vpn) {
                self.fbt
                    .entry_mut(idx)
                    .presence
                    .clear(victim.key.line_in_page());
            } else {
                debug_assert!(false, "L2 victim {:?} has no FBT entry", victim.key);
            }
            if victim.dirty {
                self.dram.write_line(now);
            }
            if let Some(lt) = self.lifetimes.as_mut() {
                lt.l2.record_line(&victim);
            }
        }
    }

    /// Invalidates everything an evicted (or shot-down) BT entry
    /// covered: its L2 lines (selectively via the bit vector when
    /// exact, by page walk in counter mode) and, through the per-CU
    /// invalidation filters, any L1 that may hold lines of the page
    /// (§4.2: a filter hit flushes the whole — clean, write-through —
    /// L1).
    pub(super) fn invalidate_fbt_victim(&mut self, victim: &BtEntry, now: Cycle) {
        let asid = victim.leading.asid;
        let vpn = victim.leading.vpn;
        let removed = if victim.presence.is_exact() {
            let mut removed = Vec::new();
            for line in victim.presence.iter_set() {
                let key = LineKey::new(asid, vpn.raw() * LINES_PER_PAGE + line as u64);
                if let Some(l) = self.l2.invalidate(key) {
                    removed.push(l);
                }
            }
            removed
        } else {
            self.l2.invalidate_page(asid, vpn.raw())
        };
        for l in &removed {
            if l.dirty {
                self.dram.write_line(now);
            }
            if let Some(lt) = self.lifetimes.as_mut() {
                lt.l2.record_line(l);
            }
        }
        self.counters
            .fbt_evict_line_invals
            .add(removed.len() as u64);

        // Broadcast to the L1 invalidation filters. The membership
        // checks are off the critical path (zero-duration trace span
        // at the current cursor; no-op outside request context).
        self.tr_stage(TraceCause::FilterCheck, now);
        for cu in 0..self.cfg.n_cus {
            if !self.cfg.use_inval_filter || self.filters[cu].must_flush(asid, vpn) {
                let flushed = self.l1[cu].flush();
                if let Some(lt) = self.lifetimes.as_mut() {
                    for l in &flushed {
                        lt.l1.record_line(l);
                    }
                }
                self.filters[cu].clear();
                self.counters.l1_flushes.inc();
            } else {
                self.counters.l1_inval_filtered.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use gvc_mem::{Asid, OsLite, ProcessId, VRange, PAGE_BYTES};

    fn setup(pages: u64) -> (OsLite, ProcessId, VRange) {
        let mut os = OsLite::new(256 << 20);
        let pid = os.create_process();
        let r = os.mmap(pid, pages * PAGE_BYTES, Perms::READ_WRITE).unwrap();
        (os, pid, r)
    }

    fn read(r: &VRange, off: u64, cu: usize, at: u64) -> LineAccess {
        LineAccess {
            cu,
            asid: Asid(0),
            vaddr: r.addr_at(off),
            is_write: false,
            at: Cycle::new(at),
        }
    }

    fn write(r: &VRange, off: u64, cu: usize, at: u64) -> LineAccess {
        LineAccess {
            is_write: true,
            ..read(r, off, cu, at)
        }
    }

    #[test]
    fn hits_never_touch_translation_hardware() {
        let (os, _pid, r) = setup(2);
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let cold = mem.access(read(&r, 0, 0, 0), &os);
        assert!(cold.fault.is_none());
        let after_cold = mem.iommu.stats().requests.get();
        assert_eq!(after_cold, 1);
        // L1 hit.
        let t1 = mem.access(read(&r, 0, 0, cold.done_at.raw()), &os);
        // L2 hit from another CU.
        let t2 = mem.access(read(&r, 0, 5, t1.done_at.raw()), &os);
        assert!(t2.fault.is_none());
        assert_eq!(
            mem.iommu.stats().requests.get(),
            after_cold,
            "hits are filtered"
        );
        assert_eq!(mem.counters().filtered_at_l1.get(), 1);
        assert_eq!(mem.counters().filtered_at_l2.get(), 1);
        mem.check_virtual_invariants();
    }

    #[test]
    fn presence_bits_track_l2_exactly() {
        let (os, pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let mut t = 0;
        for line in [0u64, 3, 7] {
            let res = mem.access(read(&r, line * 128, 0, t), &os);
            t = res.done_at.raw();
        }
        let (pa, _) = os.translate(pid, r.start()).unwrap();
        let idx = mem.fbt.lookup_ppn(pa.ppn()).expect("BT entry exists");
        let e = mem.fbt.entry(idx);
        assert_eq!(e.presence.count(), 3);
        assert!(e.presence.test(0) && e.presence.test(3) && e.presence.test(7));
        assert!(!e.written);
        mem.check_virtual_invariants();
    }

    #[test]
    fn write_sets_written_flag_and_dirty_line() {
        let (os, pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let w = mem.access(write(&r, 0, 0, 0), &os);
        assert!(w.fault.is_none());
        assert_eq!(w.done_at, Cycle::new(1), "writes are posted");
        let (pa, _) = os.translate(pid, r.start()).unwrap();
        let idx = mem.fbt.lookup_ppn(pa.ppn()).unwrap();
        assert!(mem.fbt.entry(idx).written);
        let key = MemorySystem::virt_key(Asid(0), r.start());
        assert!(mem.l2.peek(key).unwrap().dirty);
        mem.check_virtual_invariants();
    }

    #[test]
    fn read_only_synonym_replays_through_leading_va() {
        let (mut os, pid, r) = setup(1);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        // Prime through the original (leading) VA.
        let a = mem.access(read(&r, 0, 0, 0), &os);
        // Access the same physical line through the alias.
        let b = mem.access(read(&alias, 0, 1, a.done_at.raw()), &os);
        assert!(b.fault.is_none());
        assert_eq!(mem.counters().synonyms_detected.get(), 1);
        assert_eq!(mem.counters().synonym_replays.get(), 1);
        // No duplicate caching: still one L2 line for the page.
        let lead_key = MemorySystem::virt_key(Asid(0), r.start());
        let alias_key = MemorySystem::virt_key(Asid(0), alias.start());
        assert!(mem.l2.peek(lead_key).is_some());
        assert!(mem.l2.peek(alias_key).is_none());
        mem.check_virtual_invariants();
    }

    #[test]
    fn synonym_to_uncached_line_fetches_under_leading_va() {
        let (mut os, pid, r) = setup(1);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let a = mem.access(read(&r, 0, 0, 0), &os);
        // A *different* line via the alias: bit clear, fetch, cache
        // under the leading VA.
        let b = mem.access(read(&alias, 5 * 128, 1, a.done_at.raw()), &os);
        assert!(b.fault.is_none());
        let lead_line5 = MemorySystem::virt_key(Asid(0), r.addr_at(5 * 128));
        assert!(mem.l2.peek(lead_line5).is_some(), "cached under leading VA");
        mem.check_virtual_invariants();
    }

    #[test]
    fn dynamic_remapping_turns_replays_into_hits() {
        let (mut os, pid, r) = setup(1);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut cfg = SystemConfig::vc_with_opt();
        cfg.dynamic_synonym_remapping = true;
        let mut mem = MemorySystem::new(cfg);
        let mut t = mem.access(read(&r, 0, 0, 0), &os).done_at.raw();
        // First alias access replays and installs the remapping...
        t = mem.access(read(&alias, 0, 1, t), &os).done_at.raw();
        assert_eq!(mem.counters().synonym_replays.get(), 1);
        // ...subsequent alias accesses from that CU remap pre-L1 and
        // hit the caches directly: no further replays.
        for _ in 0..4 {
            let res = mem.access(read(&alias, 0, 1, t), &os);
            assert!(res.fault.is_none());
            t = res.done_at.raw();
        }
        assert_eq!(mem.counters().synonym_replays.get(), 1, "no more replays");
        assert!(mem.counters().synonym_remaps.get() >= 4);
        assert_eq!(
            mem.counters().filtered_at_l1.get() + mem.counters().filtered_at_l2.get(),
            4
        );
        mem.check_virtual_invariants();
    }

    #[test]
    fn shootdown_flushes_remap_tables() {
        let (mut os, pid, r) = setup(2);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut cfg = SystemConfig::vc_with_opt();
        cfg.dynamic_synonym_remapping = true;
        let mut mem = MemorySystem::new(cfg);
        let mut t = mem.access(read(&r, 0, 0, 0), &os).done_at.raw();
        t = mem.access(read(&alias, 0, 1, t), &os).done_at.raw();
        // Unmap the leading page: the remapping would now point at a
        // dead name; the shootdown must flush it.
        let first = gvc_mem::VRange::new(r.start(), PAGE_BYTES);
        let sd = os.munmap(pid, first).unwrap();
        t = mem.apply_shootdown(&sd, Cycle::new(t)).raw();
        // The alias mapping itself is still live (refcounted frame);
        // accessing it must re-resolve at the BT, not remap to the
        // dead leading VA (which would page-fault).
        let res = mem.access(read(&alias, 0, 1, t), &os);
        assert!(res.fault.is_none(), "stale remapping must not leak");
        mem.check_virtual_invariants();
    }

    #[test]
    fn repeated_synonym_accesses_replay_every_time() {
        let (mut os, pid, r) = setup(1);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let mut t = mem.access(read(&r, 0, 0, 0), &os).done_at.raw();
        for _ in 0..3 {
            t = mem.access(read(&alias, 0, 1, t), &os).done_at.raw();
        }
        assert_eq!(
            mem.counters().synonym_replays.get(),
            3,
            "non-leading accesses never cache"
        );
    }

    #[test]
    fn read_write_synonym_faults_under_default_policy() {
        let (mut os, pid, r) = setup(1);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        // Write through the leading VA, then read via the alias.
        let w = mem.access(write(&r, 0, 0, 0), &os);
        let res = mem.access(read(&alias, 0, 1, w.done_at.raw() + 500), &os);
        assert_eq!(res.fault, Some(AccessFault::ReadWriteSynonym));
        assert_eq!(mem.counters().rw_synonym_faults.get(), 1);
    }

    #[test]
    fn write_synonym_faults_even_on_clean_page() {
        let (mut os, pid, r) = setup(1);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let a = mem.access(read(&r, 0, 0, 0), &os);
        let res = mem.access(write(&alias, 0, 1, a.done_at.raw()), &os);
        assert_eq!(res.fault, Some(AccessFault::ReadWriteSynonym));
    }

    #[test]
    fn replay_policy_allows_read_write_synonyms() {
        let (mut os, pid, r) = setup(1);
        let alias = os.mmap_alias(pid, r).unwrap();
        let mut cfg = SystemConfig::vc_with_opt();
        cfg.synonym_policy = SynonymPolicy::ReplayAlways;
        let mut mem = MemorySystem::new(cfg);
        let w = mem.access(write(&r, 0, 0, 0), &os);
        let res = mem.access(read(&alias, 0, 1, w.done_at.raw() + 500), &os);
        assert!(res.fault.is_none(), "future-hardware policy replays");
        assert_eq!(mem.counters().synonym_replays.get(), 1);
        mem.check_virtual_invariants();
    }

    #[test]
    fn fbt_as_second_level_tlb_avoids_walks() {
        let (os, _pid, r) = setup(32);
        // Tiny shared TLB so it thrashes; the FBT covers the pages.
        let mut cfg = SystemConfig::vc_with_opt();
        cfg.iommu.tlb = gvc_tlb::tlb::TlbConfig::shared(8);
        let mut mem = MemorySystem::new(cfg);
        let mut t = 0;
        // Touch 32 pages (4x the shared TLB), then revisit with fresh
        // lines so the L2 misses but the FBT still knows the pages.
        for pass in 0..2 {
            for p in 0..32u64 {
                let off = p * PAGE_BYTES + pass * 256;
                t = mem
                    .access(read(&r, off, (p % 4) as usize, t), &os)
                    .done_at
                    .raw();
            }
        }
        assert!(
            mem.iommu.stats().second_level_hits.get() > 0,
            "FBT must serve shared-TLB misses"
        );
        mem.check_virtual_invariants();
    }

    #[test]
    fn fbt_eviction_invalidates_covered_lines() {
        let (os, _pid, r) = setup(64);
        let mut cfg = SystemConfig::vc_with_opt();
        cfg.fbt = cfg.fbt.with_entries(8); // 1 set x 8 ways... entries=8, ways=8
        let mut mem = MemorySystem::new(cfg);
        let mut t = 0;
        for p in 0..64u64 {
            t = mem
                .access(read(&r, p * PAGE_BYTES, 0, t), &os)
                .done_at
                .raw();
        }
        assert!(mem.fbt.stats().evictions.get() > 0);
        assert!(mem.counters().fbt_evict_line_invals.get() > 0);
        // Inclusivity must survive the churn.
        mem.check_virtual_invariants();
    }

    #[test]
    fn l2_eviction_clears_presence_bits() {
        let (os, _pid, r) = setup(512);
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let mut t = 0;
        // 512 pages x 8 lines = 4096 lines > 2 MB L2 (16384 lines)? No —
        // use every line of every page: 512 * 32 = 16384 lines exactly;
        // plus churn from a second pass with reversed order.
        for p in 0..512u64 {
            for l in 0..8u64 {
                t = mem
                    .access(
                        read(&r, p * PAGE_BYTES + l * 512, (p % 16) as usize, t),
                        &os,
                    )
                    .done_at
                    .raw();
            }
        }
        mem.check_virtual_invariants();
    }

    #[test]
    fn homonyms_are_isolated_by_asid() {
        let mut os = OsLite::new(256 << 20);
        let p1 = os.create_process();
        let p2 = os.create_process();
        let r1 = os.mmap(p1, PAGE_BYTES, Perms::READ_WRITE).unwrap();
        let r2 = os.mmap(p2, PAGE_BYTES, Perms::READ_WRITE).unwrap();
        // The two processes' first regions start at the same VA.
        assert_eq!(r1.start(), r2.start());
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let a = mem.access(
            LineAccess {
                cu: 0,
                asid: p1.asid(),
                vaddr: r1.start(),
                is_write: false,
                at: Cycle::new(0),
            },
            &os,
        );
        let b = mem.access(
            LineAccess {
                cu: 1,
                asid: p2.asid(),
                vaddr: r2.start(),
                is_write: false,
                at: a.done_at,
            },
            &os,
        );
        assert!(b.fault.is_none());
        // Both lines cached, distinct keys, no synonym detected
        // (different physical pages).
        assert_eq!(mem.counters().synonyms_detected.get(), 0);
        assert_eq!(mem.l2.len(), 2);
        mem.check_virtual_invariants();
    }

    #[test]
    fn cross_process_shared_page_is_a_synonym() {
        let mut os = OsLite::new(256 << 20);
        let p1 = os.create_process();
        let p2 = os.create_process();
        let r1 = os.mmap(p1, PAGE_BYTES, Perms::READ_WRITE).unwrap();
        let shared = os.mmap_shared(p2, p1, r1).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let a = mem.access(
            LineAccess {
                cu: 0,
                asid: p1.asid(),
                vaddr: r1.start(),
                is_write: false,
                at: Cycle::new(0),
            },
            &os,
        );
        let b = mem.access(
            LineAccess {
                cu: 1,
                asid: p2.asid(),
                vaddr: shared.start(),
                is_write: false,
                at: a.done_at,
            },
            &os,
        );
        assert!(b.fault.is_none());
        assert_eq!(mem.counters().synonyms_detected.get(), 1);
        mem.check_virtual_invariants();
    }
}
