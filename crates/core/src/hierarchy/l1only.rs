//! The L1-only virtual cache design (§5.4): virtual per-CU L1s over a
//! *physical* shared L2, with per-CU TLBs consulted only after an L1
//! miss. This mirrors prior CPU virtual-cache proposals and is the
//! paper's comparison point — it filters TLB *lookups* at the L1, but
//! every L1 miss still needs a translation, so the shared IOMMU TLB
//! sees far more traffic than with the full virtual hierarchy.

use super::{AccessFault, AccessResult, LineAccess, MemorySystem};
use gvc_cache::cache::MshrOutcome;
use gvc_engine::time::Duration;
use gvc_engine::TraceCause;
use gvc_mem::{OsLite, Perms};

impl MemorySystem {
    pub(super) fn access_l1only(&mut self, a: LineAccess, os: &OsLite) -> AccessResult {
        let vkey = Self::virt_key(a.asid, a.vaddr);
        let l1_done = a.at + Duration::new(self.cfg.lat.l1_hit);

        if a.is_write {
            let ack = a.at + Duration::new(self.cfg.lat.write_ack);
            // Write-through virtual L1: update in place if present.
            if let Some(line) = self.l1[a.cu].lookup(vkey, a.at) {
                if !line.perms.covers(Perms::WRITE) {
                    self.counters.perm_faults.inc();
                    return AccessResult::fault(ack, AccessFault::PermissionDenied);
                }
            }
            // Writes always go below: translate, then write the
            // physical L2.
            self.tr_stage(TraceCause::L1Lookup, l1_done);
            let (ppn, perms, ready, _miss) =
                match self.translate_per_cu(a.cu, a.asid, a.vaddr.vpn(), l1_done, os) {
                    Ok(ok) => ok,
                    Err((done, fault)) => return AccessResult::fault(done, fault),
                };
            if !perms.covers(Perms::WRITE) {
                self.counters.perm_faults.inc();
                return AccessResult::fault(ready, AccessFault::PermissionDenied);
            }
            let pkey = Self::phys_key(ppn, a.vaddr);
            self.write_physical(a.cu, pkey, ready);
            return AccessResult::ok(ack);
        }

        // Read: virtual L1 first — a hit filters the TLB lookup.
        if let Some(line) = self.l1[a.cu].lookup(vkey, a.at) {
            self.tr_stage(TraceCause::L1Lookup, l1_done);
            if !line.perms.covers(Perms::READ) {
                self.counters.perm_faults.inc();
                return AccessResult::fault(l1_done, AccessFault::PermissionDenied);
            }
            self.counters.filtered_at_l1.inc();
            let ready = match Self::hit_fill_wait(&self.l1_mshr[a.cu], &line, vkey, a.at) {
                Some(d) => {
                    let ready = d.max(l1_done);
                    self.tr_stage(TraceCause::MshrWait, ready);
                    ready
                }
                None => l1_done,
            };
            return AccessResult::ok(ready);
        }
        if let MshrOutcome::Merged { fill_done } = self.l1_mshr[a.cu].check(vkey, a.at) {
            self.counters.filtered_at_l1.inc();
            self.tr_stage(TraceCause::MshrWait, fill_done);
            return AccessResult::ok(fill_done);
        }

        // L1 miss: per-CU TLB, then the physical L2.
        self.tr_stage(TraceCause::L1Lookup, l1_done);
        let (ppn, perms, ready, _miss) =
            match self.translate_per_cu(a.cu, a.asid, a.vaddr.vpn(), l1_done, os) {
                Ok(ok) => ok,
                Err((done, fault)) => return AccessResult::fault(done, fault),
            };
        if !perms.covers(Perms::READ) {
            self.counters.perm_faults.inc();
            return AccessResult::fault(ready, AccessFault::PermissionDenied);
        }
        let pkey = Self::phys_key(ppn, a.vaddr);
        // `read_physical` skips the L1 lookup when the fill key differs
        // from the L2 key (the virtual-L1 case) — the miss already
        // happened above.
        let done = self.read_physical(a.cu, pkey, ready, perms, vkey);
        AccessResult::ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use gvc_engine::time::Cycle;
    use gvc_mem::{Asid, OsLite, ProcessId, VRange, PAGE_BYTES};

    fn setup(pages: u64) -> (OsLite, ProcessId, VRange) {
        let mut os = OsLite::new(256 << 20);
        let pid = os.create_process();
        let r = os.mmap(pid, pages * PAGE_BYTES, Perms::READ_WRITE).unwrap();
        (os, pid, r)
    }

    fn read(r: &VRange, off: u64, cu: usize, at: u64) -> LineAccess {
        LineAccess {
            cu,
            asid: Asid(0),
            vaddr: r.addr_at(off),
            is_write: false,
            at: Cycle::new(at),
        }
    }

    #[test]
    fn l1_hits_filter_tlb_lookups() {
        let (os, _pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::l1_only_vc_32());
        let cold = mem.access(read(&r, 0, 0, 0), &os);
        let tlb_lookups = mem.per_cu_tlb_stats().lookups.get();
        assert_eq!(tlb_lookups, 1);
        let warm = mem.access(read(&r, 0, 0, cold.done_at.raw()), &os);
        assert!(warm.fault.is_none());
        assert_eq!(
            mem.per_cu_tlb_stats().lookups.get(),
            tlb_lookups,
            "virtual L1 hit must not consult the TLB"
        );
        assert_eq!(mem.counters().filtered_at_l1.get(), 1);
    }

    #[test]
    fn l1_miss_translates_and_fills_both_levels() {
        let (os, pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::l1_only_vc_32());
        let cold = mem.access(read(&r, 0, 0, 0), &os);
        assert!(cold.fault.is_none());
        // L1 holds the line under its virtual key.
        let vkey = MemorySystem::virt_key(Asid(0), r.start());
        assert!(mem.l1[0].peek(vkey).is_some());
        // L2 holds it under the physical key.
        let (pa, _) = os.translate(pid, r.start()).unwrap();
        let pkey = MemorySystem::phys_key(pa.ppn(), r.start());
        assert!(mem.l2.peek(pkey).is_some());
        assert!(mem.l2.peek(vkey).is_none(), "L2 is physical in this design");
    }

    #[test]
    fn second_cu_misses_l1_but_hits_shared_physical_l2() {
        let (os, _pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::l1_only_vc_32());
        let a = mem.access(read(&r, 0, 0, 0), &os);
        let iommu_before = mem.iommu.stats().requests.get();
        let b = mem.access(read(&r, 0, 1, a.done_at.raw()), &os);
        assert!(b.fault.is_none());
        // CU 1's TLB missed: the IOMMU was consulted again (the L1-only
        // design's weakness versus the full hierarchy).
        assert_eq!(mem.iommu.stats().requests.get(), iommu_before + 1);
        assert!(
            b.done_at < a.done_at + Duration::new(400),
            "L2 hit, not DRAM"
        );
    }

    #[test]
    fn writes_are_posted_and_reach_physical_l2() {
        let (os, pid, r) = setup(1);
        let mut mem = MemorySystem::new(SystemConfig::l1_only_vc_32());
        let w = mem.access(
            LineAccess {
                is_write: true,
                ..read(&r, 0, 0, 0)
            },
            &os,
        );
        assert_eq!(w.done_at, Cycle::new(1));
        let (pa, _) = os.translate(pid, r.start()).unwrap();
        let pkey = MemorySystem::phys_key(pa.ppn(), r.start());
        assert!(mem.l2.peek(pkey).unwrap().dirty);
    }

    #[test]
    fn filter_counts_match_l1_hits() {
        let (os, _pid, r) = setup(2);
        let mut mem = MemorySystem::new(SystemConfig::l1_only_vc_32());
        let mut t = 0;
        for _ in 0..5 {
            t = mem.access(read(&r, 0, 0, t), &os).done_at.raw();
        }
        assert_eq!(mem.counters().filtered_at_l1.get(), 4);
        assert_eq!(
            mem.counters().filtered_at_l2.get(),
            0,
            "physical L2 filters nothing"
        );
    }
}
