//! Figure 2: per-CU TLB miss ratio by TLB size, broken down by where
//! the missing access's data resides (L1 / L2 / memory).

use crate::runner::{keys_for, mean, prefetch, run};
use gvc::SystemConfig;
use gvc_workloads::{Scale, WorkloadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The swept per-CU TLB sizes (`None` = infinite, the paper's "inf").
pub const TLB_SIZES: [Option<usize>; 4] = [Some(32), Some(64), Some(128), None];

/// One bar of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Per-CU TLB entries (`None` = infinite).
    pub tlb_entries: Option<usize>,
    /// Total per-CU TLB miss ratio (the bar height).
    pub miss_ratio: f64,
    /// Fraction of *accesses* that missed the TLB but hit an L1.
    pub miss_l1_hit: f64,
    /// Fraction that missed the TLB but hit the shared L2.
    pub miss_l2_hit: f64,
    /// Fraction that missed the TLB and went to memory.
    pub miss_l2_miss: f64,
}

/// The whole figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// All bars, workload-major in the paper's order.
    pub rows: Vec<Row>,
    /// Mean fraction of 32-entry-TLB misses filterable by a virtual
    /// hierarchy (the paper reports 66%).
    pub filterable_32: f64,
    /// Same for 128-entry TLBs (the paper reports 65%).
    pub filterable_128: f64,
}

/// Runs the experiment.
pub fn collect(scale: Scale, seed: u64) -> Fig2 {
    let configs: Vec<SystemConfig> = TLB_SIZES
        .iter()
        .map(|&e| SystemConfig::baseline_infinite_bandwidth().with_per_cu_tlb_entries(e))
        .collect();
    prefetch(&keys_for(&WorkloadId::all(), &configs, scale, seed));
    let mut rows = Vec::new();
    let mut filt32 = Vec::new();
    let mut filt128 = Vec::new();
    for id in WorkloadId::all() {
        for entries in TLB_SIZES {
            // Infinite IOMMU bandwidth isolates miss behaviour from
            // serialization, as in the paper's measurement.
            let cfg = SystemConfig::baseline_infinite_bandwidth().with_per_cu_tlb_entries(entries);
            let rep = run(id, cfg, scale, seed);
            let ratio = rep.mem.tlb_miss_ratio();
            let (l1, l2, mem_frac) = rep.mem.tlb_miss_breakdown();
            rows.push(Row {
                workload: id.name().to_string(),
                tlb_entries: entries,
                miss_ratio: ratio,
                miss_l1_hit: ratio * l1,
                miss_l2_hit: ratio * l2,
                miss_l2_miss: ratio * mem_frac,
            });
            if entries == Some(32) {
                filt32.push(l1 + l2);
            }
            if entries == Some(128) {
                filt128.push(l1 + l2);
            }
        }
    }
    Fig2 {
        rows,
        filterable_32: mean(&filt32),
        filterable_128: mean(&filt128),
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2: per-CU TLB miss ratio breakdown (fractions of all accesses)"
        )?;
        writeln!(
            f,
            "{:<14} {:>6} {:>8} {:>10} {:>10} {:>10}",
            "workload", "TLB", "miss%", "L1$-hit%", "L2$-hit%", "L2$-miss%"
        )?;
        for r in &self.rows {
            let tlb = r.tlb_entries.map_or("inf".to_string(), |e| e.to_string());
            writeln!(
                f,
                "{:<14} {:>6} {:>8.1} {:>10.1} {:>10.1} {:>10.1}",
                r.workload,
                tlb,
                r.miss_ratio * 100.0,
                r.miss_l1_hit * 100.0,
                r.miss_l2_hit * 100.0,
                r.miss_l2_miss * 100.0,
            )?;
        }
        writeln!(
            f,
            "filterable TLB misses (data in caches): {:.0}% @32 entries (paper: 66%), {:.0}% @128 (paper: 65%)",
            self.filterable_32 * 100.0,
            self.filterable_128 * 100.0
        )
    }
}
