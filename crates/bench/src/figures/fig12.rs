//! Figure 12 (appendix): relative lifetime of pages in each level of
//! the cache hierarchy versus per-CU TLB entries, on `bfs`.
//!
//! The paper's observation: 90% of TLB entries are evicted within
//! ~5000 ns, while much of the data in the L1 — and even more in the
//! larger L2 — is still actively used, which is why virtual caches
//! filter TLB misses so effectively.

use crate::runner::{prefetch, run, RunKey};
use gvc::report::LifetimeCurves;
use gvc::SystemConfig;
use gvc_workloads::{Scale, WorkloadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The figure's three CDF curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12 {
    /// The curves from the `bfs` baseline run.
    pub curves: LifetimeCurves,
    /// Fraction of TLB entries living less than 5 µs (paper: ~90%).
    pub tlb_short_lived: f64,
    /// Fraction of L1 data still active past 5 µs (paper: ~40%).
    pub l1_still_active: f64,
    /// Fraction of L2 data still active past 5 µs (paper: ~60%).
    pub l2_still_active: f64,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the tracking run produced no lifetime curves (cannot
/// happen: the configuration enables tracking).
pub fn collect(scale: Scale, seed: u64) -> Fig12 {
    let cfg = SystemConfig::baseline_512().with_lifetimes();
    // One run only, but routing it through the executor keeps every
    // figure on the same submission path.
    prefetch(&[RunKey {
        workload: WorkloadId::Bfs,
        config: cfg,
        scale,
        seed,
    }]);
    let rep = run(WorkloadId::Bfs, cfg, scale, seed);
    let curves = rep.mem.lifetimes.expect("lifetime tracking enabled");
    let at = |cdf: &[f64], ns: f64| {
        let idx = curves
            .xs_ns
            .iter()
            .position(|&x| x >= ns)
            .unwrap_or(curves.xs_ns.len() - 1);
        cdf[idx]
    };
    Fig12 {
        tlb_short_lived: at(&curves.tlb, 5000.0),
        l1_still_active: 1.0 - at(&curves.l1, 5000.0),
        l2_still_active: 1.0 - at(&curves.l2, 5000.0),
        curves,
    }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 12: lifetime CDFs on bfs (fraction of population <= x)"
        )?;
        writeln!(
            f,
            "{:>9} {:>9} {:>9} {:>9}",
            "ns", "TLB", "L1 data", "L2 data"
        )?;
        for (i, x) in self.curves.xs_ns.iter().enumerate() {
            if i % 4 == 0 {
                writeln!(
                    f,
                    "{:>9.0} {:>9.2} {:>9.2} {:>9.2}",
                    x, self.curves.tlb[i], self.curves.l1[i], self.curves.l2[i]
                )?;
            }
        }
        writeln!(
            f,
            "samples: tlb={} l1={} l2={}",
            self.curves.samples.0, self.curves.samples.1, self.curves.samples.2
        )?;
        writeln!(
            f,
            "at 5 us: {:.0}% of TLB entries already evicted (paper ~90%), {:.0}% of L1 data (paper ~40%) and {:.0}% of L2 data (paper ~60%) still active",
            self.tlb_short_lived * 100.0,
            self.l1_still_active * 100.0,
            self.l2_still_active * 100.0
        )
    }
}
