//! The `repro trace` subcommand: runs one design × workload with the
//! [`gvc_engine::trace`] sink attached and exports two artifacts —
//! a Chrome/Perfetto trace-event JSON (load it at <https://ui.perfetto.dev>)
//! and a per-interval metrics JSON.
//!
//! The run recipe is byte-for-byte the sweep runner's
//! (`gvc_workloads::build` + `GpuSim::run`), so a traced run reports
//! the exact statistics the figures are built from; only the sink is
//! extra. Determinism: the export depends solely on (design, workload,
//! scale, seed), never on worker count or host parallelism.

use gvc::config::SystemConfig;
use gvc_engine::time::Cycle;
use gvc_engine::TraceHandle;
use gvc_gpu::{GpuConfig, GpuSim, RunReport};
use gvc_workloads::{Scale, WorkloadId};
use serde::Value;

/// Ring capacity for traced runs: large enough that a test-scale run
/// keeps every event, while paper-scale runs keep the most recent ~1M
/// events (oldest whole requests are dropped, and counted).
const TRACE_CAPACITY: usize = 1 << 20;

/// Design names accepted by `repro trace <design> <workload>`.
pub const DESIGN_NAMES: [&str; 9] = [
    "ideal",
    "baseline",
    "baseline-512",
    "baseline-16k",
    "baseline-large-tlbs",
    "baseline-infinite-bw",
    "vc",
    "vc-without-opt",
    "l1-only-vc",
];

/// Maps a CLI design name to its [`SystemConfig`] preset. `baseline`
/// and `vc` are shorthands for the paper's default points
/// (`baseline-512` and the fully optimised virtual hierarchy).
pub fn design_by_name(name: &str) -> Option<SystemConfig> {
    Some(match name {
        "ideal" => SystemConfig::ideal_mmu(),
        "baseline" | "baseline-512" => SystemConfig::baseline_512(),
        "baseline-16k" => SystemConfig::baseline_16k(),
        "baseline-large-tlbs" => SystemConfig::baseline_large_per_cu_tlbs(),
        "baseline-infinite-bw" => SystemConfig::baseline_infinite_bandwidth(),
        "vc" | "vc-with-opt" => SystemConfig::vc_with_opt(),
        "vc-without-opt" => SystemConfig::vc_without_opt(),
        "l1-only-vc" => SystemConfig::l1_only_vc_32(),
        _ => return None,
    })
}

/// Everything a traced run produces.
pub struct TraceArtifacts {
    /// The ordinary run report — identical to what an untraced run of
    /// the same key yields.
    pub report: RunReport,
    /// Chrome trace-event JSON document.
    pub perfetto: Value,
    /// Per-interval metrics JSON document.
    pub metrics: Value,
}

/// Runs `workload` on `config` with a trace sink attached and returns
/// the report plus both export documents.
pub fn collect(
    config: SystemConfig,
    workload: WorkloadId,
    scale: Scale,
    seed: u64,
    max_cycles: Option<u64>,
) -> TraceArtifacts {
    let handle = TraceHandle::new(TRACE_CAPACITY);
    let mut w = gvc_workloads::build_thp(workload, scale, seed, config.transparent_huge_pages);
    let gpu = GpuConfig {
        max_cycles,
        ..GpuConfig::default()
    };
    let report = GpuSim::new(gpu, config)
        .with_trace(handle.clone())
        .run(&mut *w.source, &mut w.os);
    let (perfetto, metrics) =
        handle.with_sink(|s| (s.perfetto(), s.metrics(Cycle::new(report.cycles))));
    TraceArtifacts {
        report,
        perfetto,
        metrics,
    }
}

/// Summary of a validated Perfetto document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfettoCheck {
    /// Total trace events ("B" plus "E").
    pub events: usize,
    /// Completed spans (matched begin/end pairs).
    pub spans: usize,
    /// Distinct (pid, tid) tracks.
    pub tracks: usize,
}

fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Structurally validates a Chrome trace-event document: every event
/// carries the expected fields, every "E" closes the most recent "B"
/// of the same name on its (pid, tid) track with a non-negative
/// duration, and no track is left with an open span.
pub fn validate_perfetto(doc: &Value) -> Result<PerfettoCheck, String> {
    let Value::Map(top) = doc else {
        return Err("top level is not an object".into());
    };
    let Some(Value::Seq(events)) = field(top, "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    // One stack of open (name, ts) spans per (pid, tid) track.
    type Track = (u64, u64);
    type OpenSpans = Vec<(String, u64)>;
    let mut stacks: Vec<(Track, OpenSpans)> = Vec::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Value::Map(ev) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get =
            |key: &str| field(ev, key).ok_or_else(|| format!("event {i} is missing field {key:?}"));
        let Value::Str(name) = get("name")? else {
            return Err(format!("event {i}: name is not a string"));
        };
        let Value::Str(ph) = get("ph")? else {
            return Err(format!("event {i}: ph is not a string"));
        };
        let ts = as_u64(get("ts")?).ok_or_else(|| format!("event {i}: bad ts"))?;
        let pid = as_u64(get("pid")?).ok_or_else(|| format!("event {i}: bad pid"))?;
        let tid = as_u64(get("tid")?).ok_or_else(|| format!("event {i}: bad tid"))?;
        let track = (pid, tid);
        let stack = match stacks.iter_mut().find(|(t, _)| *t == track) {
            Some((_, s)) => s,
            None => {
                stacks.push((track, Vec::new()));
                &mut stacks.last_mut().unwrap().1
            }
        };
        match ph.as_str() {
            "B" => stack.push((name.clone(), ts)),
            "E" => {
                let Some((open, begin)) = stack.pop() else {
                    return Err(format!(
                        "event {i}: \"E\" {name:?} on track {track:?} with no open span"
                    ));
                };
                if open != *name {
                    return Err(format!(
                        "event {i}: \"E\" {name:?} closes mismatched span {open:?}"
                    ));
                }
                if ts < begin {
                    return Err(format!(
                        "event {i}: span {name:?} has negative duration ({begin} -> {ts})"
                    ));
                }
                spans += 1;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (track, stack) in &stacks {
        if let Some((name, ts)) = stack.last() {
            return Err(format!(
                "track {track:?} ends with unclosed span {name:?} (begun at {ts})"
            ));
        }
    }
    Ok(PerfettoCheck {
        events: events.len(),
        spans,
        tracks: stacks.len(),
    })
}
