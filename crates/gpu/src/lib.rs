#![warn(missing_docs)]

//! GPU execution front end for the `gvc` simulator.
//!
//! Models the compute side of the paper's SoC (Table 1: 16 CUs × 32
//! lanes at 700 MHz): wavefront state machines with latency-hiding
//! multithreading, the per-CU memory coalescer, scratchpad accesses
//! (which bypass the TLB and caches, §3.1), and the run loop that
//! streams coalesced line accesses into a `gvc::MemorySystem`.
//!
//! * [`kernel`] — the workload interface: [`Kernel`]s made of
//!   wavefront programs emitting [`WaveOp`]s, and the [`KernelSource`]
//!   trait iterative workloads implement.
//! * [`coalescer`] — per-instruction lane-address coalescing.
//! * [`sim`] — the event-driven run loop ([`GpuSim`]) and per-run
//!   [`RunReport`].
//!
//! # Example
//!
//! ```
//! use gvc::SystemConfig;
//! use gvc_gpu::kernel::{Kernel, WaveOp};
//! use gvc_gpu::{GpuConfig, GpuSim};
//! use gvc_mem::{OsLite, Perms};
//!
//! let mut os = OsLite::new(64 << 20);
//! let pid = os.create_process();
//! let buf = os.mmap(pid, 64 * 4096, Perms::READ_WRITE)?;
//!
//! // One wavefront streaming through the buffer.
//! let addrs: Vec<_> = (0..32).map(|l| buf.addr_at(l * 128)).collect();
//! let kernel = Kernel::builder("stream", pid.asid())
//!     .wave(vec![WaveOp::read(addrs), WaveOp::compute(8)])
//!     .build();
//!
//! let mut sim = GpuSim::new(GpuConfig::default(), SystemConfig::vc_with_opt());
//! let report = sim.run(&mut kernel.into_source(), &mut os);
//! assert!(report.cycles > 0);
//! assert_eq!(report.mem_instructions, 1);
//! # Ok::<(), gvc_mem::MemError>(())
//! ```

pub mod coalescer;
pub mod kernel;
pub mod service;
pub mod sim;
pub mod soak;

pub use coalescer::coalesce;
pub use kernel::{Kernel, KernelBuilder, KernelSource, WaveOp, WaveProgram};
pub use service::{run_service, ServiceConfig, ServiceReport, TenantStats};
pub use sim::{GpuConfig, GpuSim, RunReport, Truncation};
pub use soak::{
    EpochPoint, SoakCheckpoint, SoakConfig, SoakReport, SoakSim, SoakTenantSnapshot,
    SoakTenantStats, SOAK_CHECKPOINT_VERSION,
};
