//! Component microbenchmarks: throughput of the hot structures every
//! simulated cycle flows through.

use criterion::{criterion_group, criterion_main, Criterion};
use gvc::fbt::{Fbt, FbtConfig};
use gvc::{LineAccess, MemorySystem, SystemConfig};
use gvc_cache::{CacheConfig, LineKey, SetAssocCache};
use gvc_engine::{Cycle, EventQueue, ThroughputPort};
use gvc_mem::{Asid, OsLite, Perms, Ppn, Vpn};
use gvc_tlb::tlb::{Tlb, TlbConfig, TlbKey};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine_event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at(Cycle::new((i * 7919) % 4096), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_throughput_port(c: &mut Criterion) {
    c.bench_function("engine_port_reserve_1k", |b| {
        b.iter(|| {
            let mut p = ThroughputPort::per_cycle(1);
            let mut last = Cycle::ZERO;
            for i in 0..1000u64 {
                last = p.reserve(Cycle::new(i / 3));
            }
            last
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_32fa_lookup_insert_1k", |b| {
        let mut tlb = Tlb::new(TlbConfig::per_cu(32));
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1000u64 {
                let key = TlbKey::new(Asid(0), Vpn::new(i % 64));
                if tlb.lookup(key, Cycle::new(i)).is_some() {
                    hits += 1;
                } else {
                    tlb.insert(key, Ppn::new(i), Perms::READ_WRITE, Cycle::new(i));
                }
            }
            hits
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_cache_lookup_insert_1k", |b| {
        let mut l1 = SetAssocCache::new(CacheConfig::gpu_l1());
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1000u64 {
                let key = LineKey::new(Asid(0), i % 512);
                if l1.lookup(key, Cycle::new(i)).is_some() {
                    hits += 1;
                } else {
                    l1.insert(key, Perms::READ_WRITE, false, Cycle::new(i));
                }
            }
            hits
        })
    });
}

fn bench_fbt(c: &mut Criterion) {
    c.bench_function("fbt_insert_lookup_1k", |b| {
        b.iter(|| {
            let mut fbt = Fbt::new(FbtConfig::default().with_entries(2048));
            for i in 0..1000u64 {
                fbt.insert(
                    Ppn::new(i),
                    Asid(0),
                    Vpn::new(10_000 + i),
                    Perms::READ_WRITE,
                );
            }
            let mut found = 0;
            for i in 0..1000u64 {
                if fbt.lookup_ppn(Ppn::new(i)).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
}

fn bench_memory_system(c: &mut Criterion) {
    let mut os = OsLite::new(64 << 20);
    let pid = os.create_process();
    let buf = os.mmap(pid, 4 << 20, Perms::READ_WRITE).expect("fits");
    c.bench_function("memory_system_vc_access_1k", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
            let mut t = Cycle::ZERO;
            for i in 0..1000u64 {
                let a = LineAccess {
                    cu: (i % 16) as usize,
                    asid: pid.asid(),
                    vaddr: buf.addr_at(((i * 12_347) % (4 << 20)) & !127),
                    is_write: false,
                    at: t,
                };
                t = mem.access(a, &os).done_at;
            }
            t
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets =
        bench_event_queue,
        bench_throughput_port,
        bench_tlb,
        bench_cache,
        bench_fbt,
        bench_memory_system,
}
criterion_main!(micro);
