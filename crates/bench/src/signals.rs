//! Graceful-shutdown signal latch for long-running subcommands.
//!
//! `repro soak` and `repro tenants` can run for hours; a plain Ctrl-C
//! (SIGINT) or a scheduler's SIGTERM would discard everything since
//! the last checkpoint. Installing this latch turns either signal into
//! a flag the epoch/cell loops poll at their next safe boundary, where
//! they write a final checkpoint plus a partial report flagged
//! `truncated` and exit with [`EXIT_TRUNCATED`].
//!
//! The handler itself only stores one atomic — the strictest
//! async-signal-safety discipline — and is registered through the
//! C `signal(2)` entry point directly, so no extra dependency is
//! needed. On non-Unix targets installation is a no-op and the latch
//! simply never trips.

use std::sync::atomic::{AtomicBool, Ordering};

/// Exit status for a run cut short by SIGINT/SIGTERM after writing its
/// final checkpoint and truncated report (mirrors BSD's `EX_TEMPFAIL`:
/// rerun to resume).
pub const EXIT_TRUNCATED: i32 = 75;

/// Exit status for a run that stopped itself deliberately at a
/// `--kill-after` epoch boundary (crash-drill mode; checkpoints are on
/// disk, rerun to resume).
pub const EXIT_KILLED: i32 = 76;

/// Set by the handler on the first SIGINT/SIGTERM.
static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        /// C `signal(2)`. Handler/`SIG_DFL` are passed as raw function
        /// addresses; the return value (the previous handler) is
        /// ignored.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn latch(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let h = latch as SigHandler as usize;
        unsafe {
            signal(SIGINT, h);
            signal(SIGTERM, h);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM latch (idempotent). Call once at the
/// start of a resumable subcommand; plain figure runs keep the default
/// die-on-signal behavior by never calling this.
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived. Loops poll this at epoch or
/// cell boundaries.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Simulates a received signal (tests drive the truncation paths
/// through the same latch the real handler sets).
pub fn trigger_for_test() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Clears the latch (tests only; a real run exits instead).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

// No in-crate tests: the latch is process-global state, and sibling
// unit tests (the tenants sweep, the soak supervisor) poll it.
// Coverage lives in tests/tests/soak.rs, which owns its process.
