//! `mis` — maximal independent set (Pannotia).
//!
//! Luby's algorithm: every round, live vertices gather their live
//! neighbors' random priorities; local maxima join the set and knock
//! their neighbors out with scattered status writes. The scattered
//! writes on top of the gathers make `mis` one of the paper's most
//! translation-hungry workloads.

use crate::arrays::DevArray;
use crate::gather::{gather_waves, hash_u32, GatherSpec};
use crate::graphs::Graph;
use crate::{Scale, Workload};
use gvc_gpu::kernel::{Kernel, KernelSource};
use gvc_mem::{Asid, OsLite};

const MAX_ROUNDS: usize = 12;

#[derive(Clone, Copy, PartialEq)]
enum State {
    Live,
    InSet,
    Removed,
}

struct MisSource {
    asid: Asid,
    spec: GatherSpec,
    prio_arr: DevArray,
    status_arr: DevArray,
    prio: Vec<u32>,
    state: Vec<State>,
    round: usize,
}

impl MisSource {
    fn advance(&mut self) -> (Vec<u32>, Vec<bool>) {
        let g = self.spec.graph.clone();
        let active: Vec<u32> = (0..g.n)
            .filter(|&v| self.state[v as usize] == State::Live)
            .collect();
        let mut joined = Vec::new();
        for &v in &active {
            let mut is_max = true;
            for &t in g.neighbors(v) {
                if t != v
                    && self.state[t as usize] == State::Live
                    && self.prio[t as usize] >= self.prio[v as usize]
                {
                    is_max = false;
                    break;
                }
            }
            if is_max {
                joined.push(v);
            }
        }
        // Mark winners and knock out their neighbors; remember which
        // vertices got removed this round (they receive the scattered
        // writes).
        let mut removed_now = vec![false; g.n as usize];
        for &v in &joined {
            self.state[v as usize] = State::InSet;
        }
        for &v in &joined {
            for &t in g.neighbors(v) {
                if self.state[t as usize] == State::Live {
                    self.state[t as usize] = State::Removed;
                    removed_now[t as usize] = true;
                }
            }
        }
        (active, removed_now)
    }
}

impl KernelSource for MisSource {
    fn name(&self) -> &str {
        "mis"
    }

    fn next_kernel(&mut self) -> Option<Kernel> {
        if self.round >= MAX_ROUNDS || self.state.iter().all(|&s| s != State::Live) {
            return None;
        }
        let (active, removed_now) = self.advance();
        if active.is_empty() {
            return None;
        }
        self.round += 1;
        let mut spec = self.spec.clone();
        spec.vertex_reads = vec![self.prio_arr, self.status_arr];
        spec.gather = vec![self.prio_arr];
        spec.vertex_writes = vec![self.status_arr];
        let status = self.status_arr;
        let pred = |t: u32| removed_now[t as usize];
        let waves = gather_waves(&spec, &active, Some((&status, &pred)));
        let mut b = Kernel::builder(format!("mis_round{}", self.round), self.asid);
        for ops in waves {
            b = b.wave(ops);
        }
        Some(b.build())
    }
}

/// Builds the workload.
pub fn build(scale: Scale, seed: u64, thp: bool) -> Workload {
    let n = scale.apply(32 * 1024, 2048) as u32;
    let graph = Graph::power_law_shared(n, 8, seed);
    let mut os = OsLite::new(512 << 20);
    os.set_huge_alignment(thp);
    let pid = os.create_process();
    let offsets = DevArray::alloc(&mut os, pid, n as u64 + 1, 4);
    let targets = DevArray::alloc(&mut os, pid, graph.edges(), 4);
    let prio_arr = DevArray::alloc(&mut os, pid, n as u64, 4);
    let status_arr = DevArray::alloc(&mut os, pid, n as u64, 4);
    let prio: Vec<u32> = (0..n)
        .map(|v| hash_u32(v, (seed as u32) ^ 0x4D15))
        .collect();
    let mut spec = GatherSpec::new(graph, offsets, targets);
    spec.max_rounds = 16;
    Workload {
        os,
        source: Box::new(MisSource {
            asid: pid.asid(),
            spec,
            prio_arr,
            status_arr,
            prio,
            state: vec![State::Live; n as usize],
            round: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminates_with_scattered_writes() {
        let mut w = build(Scale::test(), 4, false);
        let mut rounds = 0;
        let mut scattered = 0usize;
        while let Some(k) = w.source.next_kernel() {
            rounds += 1;
            for wave in k.waves {
                scattered += wave
                    .filter(|op| matches!(op, gvc_gpu::kernel::WaveOp::Write(_)))
                    .count();
            }
            assert!(rounds <= MAX_ROUNDS);
        }
        assert!(rounds >= 2);
        assert!(scattered > 0, "knockout writes must appear");
    }
}
