//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table 1 — simulation configuration |
//! | [`fig2`] | Figure 2 — per-CU TLB miss breakdown vs TLB size |
//! | [`fig3`] | Figure 3 — IOMMU TLB access rate |
//! | [`fig4`] | Figure 4 — translation overhead (IDEAL / small / large) |
//! | [`fig5`] | Figure 5 — serialization vs IOMMU port bandwidth |
//! | [`table2`] | Table 2 — evaluated MMU designs |
//! | [`fig8`] | Figure 8 — bandwidth filtering by the virtual hierarchy |
//! | [`fig9`] | Figure 9 — performance vs the IDEAL MMU |
//! | [`fig10`] | Figure 10 — VC vs large per-CU TLBs |
//! | [`fig11`] | Figure 11 — L1-only vs whole-hierarchy virtual caches |
//! | [`fig12`] | Figure 12 (appendix) — TLB-entry vs cache-line lifetimes |
//! | [`ablations`] | DESIGN.md §5 — design-choice ablations |
//! | [`energy`] | §5.3 Takeaway 3 — energy comparison (extension) |
//! | [`tenants`] | DESIGN.md §11 — multi-tenant service curves (extension) |
//! | [`reach`] | DESIGN.md §13 — TLB reach vs translation filtering (extension) |

pub mod ablations;
pub mod energy;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod reach;
pub mod table1;
pub mod table2;
pub mod tenants;
