//! Quickstart: build a tiny divergent workload by hand and watch the
//! virtual cache hierarchy filter its translation traffic.
//!
//! ```text
//! cargo run --release -p gvc-bench --example quickstart
//! ```

use gvc::SystemConfig;
use gvc_engine::SimRng;
use gvc_gpu::kernel::{Kernel, WaveOp};
use gvc_gpu::{GpuConfig, GpuSim};
use gvc_mem::{MemError, OsLite, Perms, VRange};

/// A scatter/gather kernel: every wavefront gathers 32 random words
/// from a multi-megabyte buffer — the access pattern that makes GPU
/// TLBs weep.
fn gather_kernel(buf: &VRange, asid: gvc_mem::Asid, waves: usize, rng: &mut SimRng) -> Kernel {
    let mut b = Kernel::builder("quickstart_gather", asid);
    for _ in 0..waves {
        let mut ops = Vec::new();
        for _ in 0..12 {
            let addrs = (0..32)
                .map(|_| buf.addr_at(rng.below(buf.bytes() - 8) & !7))
                .collect();
            ops.push(WaveOp::read(addrs));
            ops.push(WaveOp::compute(16));
        }
        b = b.wave(ops);
    }
    b.build()
}

fn main() -> Result<(), MemError> {
    // 1. Boot an OS and map an 8 MiB buffer (2048 pages: far beyond
    //    the 32-entry per-CU TLB's 128 KiB reach).
    let mut os = OsLite::new(256 << 20);
    let pid = os.create_process();
    let buf = os.mmap(pid, 8 << 20, Perms::READ_WRITE)?;

    // 2. Run the same kernel under three MMU designs.
    let designs = [
        ("IDEAL MMU", SystemConfig::ideal_mmu()),
        ("Baseline 512", SystemConfig::baseline_512()),
        ("VC With OPT", SystemConfig::vc_with_opt()),
    ];
    let mut ideal_cycles = None;
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>14}",
        "design", "cycles", "rel.time", "TLB miss%", "IOMMU acc/cyc"
    );
    for (name, cfg) in designs {
        let mut rng = SimRng::seeded(7);
        let kernel = gather_kernel(&buf, pid.asid(), 256, &mut rng);
        let report = GpuSim::new(GpuConfig::default(), cfg).run(&mut kernel.into_source(), &mut os);
        let ideal = *ideal_cycles.get_or_insert(report.cycles);
        println!(
            "{:<14} {:>10} {:>9.2}x {:>11.1}% {:>14.3}",
            name,
            report.cycles,
            report.cycles as f64 / ideal as f64,
            report.mem.tlb_miss_ratio() * 100.0,
            report.mem.iommu_rate.mean_per_cycle(),
        );
        if name == "VC With OPT" {
            println!(
                "\nThe virtual hierarchy filtered {:.0}% of would-be translation traffic",
                report.mem.filter_ratio() * 100.0
            );
            println!(
                "({} L1 hits + {} L2 hits never consulted any translation hardware).",
                report.mem.counters.filtered_at_l1.get(),
                report.mem.counters.filtered_at_l2.get()
            );
        }
    }
    Ok(())
}
