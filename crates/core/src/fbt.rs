//! The forward–backward table (FBT), the paper's central structure
//! (§4, Figure 7).
//!
//! The FBT lives at the IOMMU and is fully inclusive of the GPU's
//! virtual caches:
//!
//! * The **backward table (BT)** maps a physical page (PPN tag) to its
//!   unique *leading virtual page* — the first virtual address that
//!   referenced the page, under which all of its data is cached — plus
//!   page permissions, a 32-bit line-presence vector for the shared
//!   L2, and a written bit for read-write-synonym detection.
//! * The **forward table (FT)** maps a leading virtual page back to
//!   its BT entry's index, letting the FBT be searched by virtual
//!   address: for evictions, shootdown filtering, coherence responses,
//!   and for use as a second-level TLB ("VC With OPT").
//!
//! The leading-virtual-address discipline guarantees **no physical
//! line is ever cached under two virtual names**: accesses with a
//! non-leading (synonym) virtual address always miss the virtual
//! caches and are replayed with the leading address (§4.1).

use crate::bitvec::Presence;
use gvc_engine::{Counter, FxHashMap};
use gvc_mem::{Asid, Perms, Ppn, Vpn};
use serde::{Deserialize, Serialize};

/// FBT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FbtConfig {
    /// BT entries (16 K covers a unique page per L2 line, §4.3).
    pub entries: usize,
    /// BT associativity.
    pub ways: usize,
    /// Lookup latency in cycles (the paper models 5).
    pub lookup_latency: u64,
    /// Use counters instead of bit vectors (large-page mode, §4.3).
    pub counter_mode: bool,
}

impl Default for FbtConfig {
    fn default() -> Self {
        FbtConfig {
            entries: 16 * 1024,
            ways: 8,
            lookup_latency: 5,
            counter_mode: false,
        }
    }
}

impl FbtConfig {
    /// A smaller FBT (the §4.3 "adequately provisioned" 8 K variant
    /// and the capacity-ablation sweep).
    pub fn with_entries(mut self, entries: usize) -> Self {
        self.entries = entries;
        self
    }
}

/// A leading virtual page: the unique virtual name under which a
/// physical page's data may be cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LeadingVa {
    /// Address space of the leading mapping.
    pub asid: Asid,
    /// Leading virtual page number.
    pub vpn: Vpn,
}

/// A backward-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtEntry {
    /// The physical page (tag).
    pub ppn: Ppn,
    /// The page's unique leading virtual address.
    pub leading: LeadingVa,
    /// Page permissions (checked at translation and carried to lines).
    pub perms: Perms,
    /// Which lines of the page reside in the shared L2.
    pub presence: Presence,
    /// Whether any write has touched the page while resident (for
    /// read-write synonym detection, §4.2 footnote 5).
    pub written: bool,
    /// Locked during an in-progress invalidation; locked entries
    /// cannot be evicted and block new requests to the page (§4.1).
    pub locked: bool,
}

/// A stable handle to a BT entry (the FT stores these indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BtIndex {
    set: u32,
    way: u32,
}

/// FBT statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FbtStats {
    /// BT lookups by physical page.
    pub bt_lookups: Counter,
    /// BT hits by physical page.
    pub bt_hits: Counter,
    /// FT lookups by virtual page.
    pub ft_lookups: Counter,
    /// FT hits.
    pub ft_hits: Counter,
    /// New entries allocated.
    pub inserts: Counter,
    /// Entries evicted for capacity/conflict.
    pub evictions: Counter,
    /// Evictions that still had cached lines (forced invalidations).
    pub dirty_evictions: Counter,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: BtEntry,
    last_use: u64,
}

/// The forward–backward table (see [module docs](self)).
///
/// ```
/// use gvc::fbt::{Fbt, FbtConfig};
/// use gvc_mem::{Asid, Perms, Ppn, Vpn};
///
/// let mut fbt = Fbt::new(FbtConfig::default());
/// let (idx, evicted) = fbt.insert(Ppn::new(7), Asid(0), Vpn::new(100), Perms::READ_WRITE);
/// assert!(evicted.is_none());
/// // Reverse translation: physical page -> leading virtual page.
/// let found = fbt.lookup_ppn(Ppn::new(7)).unwrap();
/// assert_eq!(found, idx);
/// assert_eq!(fbt.entry(found).leading.vpn, Vpn::new(100));
/// // Forward translation: leading virtual page -> physical page.
/// assert_eq!(fbt.translate(Asid(0), Vpn::new(100)), Some((Ppn::new(7), Perms::READ_WRITE)));
/// ```
#[derive(Debug)]
pub struct Fbt {
    config: FbtConfig,
    sets: Vec<Vec<Option<Slot>>>,
    ft: FxHashMap<LeadingVa, BtIndex>,
    use_clock: u64,
    occupancy: usize,
    max_occupancy: usize,
    /// How many ways new inserts may allocate into or evict from
    /// (normally `config.ways`). Fault injection shrinks this to force
    /// the §4.2 overflow/flush path; entries already resident in the
    /// disabled ways stay valid and findable for the window.
    usable_ways: usize,
    stats: FbtStats,
}

impl Fbt {
    /// Builds an FBT.
    ///
    /// # Panics
    ///
    /// Panics if `ways` does not divide `entries`.
    pub fn new(config: FbtConfig) -> Self {
        assert!(
            config.ways > 0 && config.entries.is_multiple_of(config.ways),
            "ways must divide entries"
        );
        let nsets = config.entries / config.ways;
        Fbt {
            sets: vec![vec![None; config.ways]; nsets],
            ft: FxHashMap::default(),
            use_clock: 0,
            occupancy: 0,
            max_occupancy: 0,
            usable_ways: config.ways,
            config,
            stats: FbtStats::default(),
        }
    }

    /// Restricts new allocations (and victim selection) to the first
    /// `ways` ways of every set — the fault-injection knob for §4.2
    /// capacity pressure. Clamped to `[1, config.ways]`; pass
    /// `config.ways` to restore full capacity.
    pub fn set_usable_ways(&mut self, ways: usize) {
        self.usable_ways = ways.clamp(1, self.config.ways);
    }

    /// Ways currently available to new allocations.
    pub fn usable_ways(&self) -> usize {
        self.usable_ways
    }

    /// The configuration.
    pub fn config(&self) -> FbtConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> FbtStats {
        self.stats
    }

    /// Resident entries.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// High-water mark of resident entries (the paper sizes the FBT by
    /// distinct pages with data in the L2 — about 6000 on average).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    fn set_of(&self, ppn: Ppn) -> usize {
        (ppn.raw() % self.sets.len() as u64) as usize
    }

    /// Looks up the BT by physical page (reverse translation /
    /// synonym check); updates recency on a hit.
    pub fn lookup_ppn(&mut self, ppn: Ppn) -> Option<BtIndex> {
        self.stats.bt_lookups.inc();
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(ppn);
        for (way, slot) in self.sets[set].iter_mut().enumerate() {
            if let Some(s) = slot {
                if s.entry.ppn == ppn {
                    s.last_use = clock;
                    self.stats.bt_hits.inc();
                    return Some(BtIndex {
                        set: set as u32,
                        way: way as u32,
                    });
                }
            }
        }
        None
    }

    /// Looks up the FT by (leading) virtual page.
    pub fn lookup_va(&mut self, asid: Asid, vpn: Vpn) -> Option<BtIndex> {
        self.stats.ft_lookups.inc();
        let idx = self.ft.get(&LeadingVa { asid, vpn }).copied();
        if idx.is_some() {
            self.stats.ft_hits.inc();
        }
        idx
    }

    /// Peeks the FT by (leading) virtual page without touching
    /// statistics — for invariant checks that must not perturb counts.
    pub fn peek_va(&self, asid: Asid, vpn: Vpn) -> Option<BtIndex> {
        self.ft.get(&LeadingVa { asid, vpn }).copied()
    }

    /// Forward-translates a leading virtual page (the second-level-TLB
    /// use of the FBT, "VC With OPT").
    pub fn translate(&mut self, asid: Asid, vpn: Vpn) -> Option<(Ppn, Perms)> {
        let idx = self.lookup_va(asid, vpn)?;
        let e = self.entry(idx);
        Some((e.ppn, e.perms))
    }

    /// The entry at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not name a resident entry (indices are
    /// invalidated by [`Fbt::remove`] and evictions).
    pub fn entry(&self, idx: BtIndex) -> &BtEntry {
        &self.sets[idx.set as usize][idx.way as usize]
            .as_ref()
            .expect("stale BtIndex")
            .entry
    }

    /// Mutable access to the entry at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not name a resident entry.
    pub fn entry_mut(&mut self, idx: BtIndex) -> &mut BtEntry {
        &mut self.sets[idx.set as usize][idx.way as usize]
            .as_mut()
            .expect("stale BtIndex")
            .entry
    }

    /// Allocates an entry for `ppn` with leading virtual page
    /// `(asid, vpn)`. Returns the new index and the entry evicted to
    /// make room (whose cached lines the caller must invalidate).
    ///
    /// Victim preference: empty way, then LRU among entries with no
    /// cached lines, then LRU overall. Locked entries are never
    /// evicted. Only the first [`Fbt::usable_ways`] ways of the set
    /// participate (all of them unless fault injection shrank the
    /// table).
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is already resident (callers must check
    /// [`Fbt::lookup_ppn`] first) or if every way is locked.
    pub fn insert(
        &mut self,
        ppn: Ppn,
        asid: Asid,
        vpn: Vpn,
        perms: Perms,
    ) -> (BtIndex, Option<BtEntry>) {
        debug_assert!(
            !self.sets[self.set_of(ppn)]
                .iter()
                .flatten()
                .any(|s| s.entry.ppn == ppn),
            "ppn already resident"
        );
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(ppn);
        let usable = self.usable_ways;
        let slots = &mut self.sets[set];

        let way = if let Some(w) = slots[..usable].iter().position(Option::is_none) {
            w
        } else {
            // Prefer a victim with no cached lines.
            let victim = slots[..usable]
                .iter()
                .enumerate()
                .filter_map(|(w, s)| s.as_ref().map(|s| (w, s)))
                .filter(|(_, s)| !s.entry.locked)
                .min_by_key(|(_, s)| (s.entry.presence.count() > 0, s.last_use))
                .map(|(w, _)| w)
                .expect("all FBT ways locked");
            victim
        };

        let evicted = slots[way].take().map(|s| s.entry);
        if let Some(old) = &evicted {
            self.stats.evictions.inc();
            if !old.presence.is_empty() {
                self.stats.dirty_evictions.inc();
            }
            self.ft.remove(&old.leading);
            self.occupancy -= 1;
        }

        let presence = if self.config.counter_mode {
            Presence::new_counter()
        } else {
            Presence::new_bits()
        };
        let leading = LeadingVa { asid, vpn };
        slots[way] = Some(Slot {
            entry: BtEntry {
                ppn,
                leading,
                perms,
                presence,
                written: false,
                locked: false,
            },
            last_use: clock,
        });
        let idx = BtIndex {
            set: set as u32,
            way: way as u32,
        };
        self.ft.insert(leading, idx);
        self.occupancy += 1;
        self.max_occupancy = self.max_occupancy.max(self.occupancy);
        self.stats.inserts.inc();
        (idx, evicted)
    }

    /// Removes the entry at `idx` (shootdown / teardown), returning it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is stale.
    pub fn remove(&mut self, idx: BtIndex) -> BtEntry {
        let slot = self.sets[idx.set as usize][idx.way as usize]
            .take()
            .expect("stale BtIndex");
        self.ft.remove(&slot.entry.leading);
        self.occupancy -= 1;
        slot.entry
    }

    /// Removes every entry of one address space (all-entry shootdown);
    /// returns the removed entries.
    pub fn remove_asid(&mut self, asid: Asid) -> Vec<BtEntry> {
        let mut removed = Vec::new();
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if slot.as_ref().is_some_and(|s| s.entry.leading.asid == asid) {
                    let s = slot.take().expect("checked");
                    self.ft.remove(&s.entry.leading);
                    self.occupancy -= 1;
                    removed.push(s.entry);
                }
            }
        }
        removed
    }

    /// Iterates over resident entries.
    pub fn iter(&self) -> impl Iterator<Item = (BtIndex, &BtEntry)> + '_ {
        self.sets.iter().enumerate().flat_map(|(set, slots)| {
            slots.iter().enumerate().filter_map(move |(way, s)| {
                s.as_ref().map(|s| {
                    (
                        BtIndex {
                            set: set as u32,
                            way: way as u32,
                        },
                        &s.entry,
                    )
                })
            })
        })
    }

    /// Captures the FBT's full state for checkpointing. Slots are
    /// serialized per set *with holes preserved* — [`BtIndex`] handles
    /// encode `(set, way)` positions, so way placement is part of the
    /// observable state. The FT is not serialized; it is derivable
    /// from the BT and rebuilt on restore.
    pub fn snapshot(&self) -> FbtSnapshot {
        FbtSnapshot {
            config: self.config,
            sets: self
                .sets
                .iter()
                .map(|set| {
                    set.iter()
                        .map(|slot| {
                            slot.as_ref().map(|s| FbtSlotSnapshot {
                                entry: s.entry,
                                last_use: s.last_use,
                            })
                        })
                        .collect()
                })
                .collect(),
            use_clock: self.use_clock,
            max_occupancy: self.max_occupancy as u64,
            usable_ways: self.usable_ways as u64,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Fbt::snapshot`]. The table must
    /// have been built with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's configuration or geometry does not
    /// match.
    pub fn restore(&mut self, snap: &FbtSnapshot) {
        assert_eq!(self.config, snap.config, "FBT snapshot config mismatch");
        assert_eq!(
            snap.sets.len(),
            self.sets.len(),
            "FBT snapshot set count mismatch"
        );
        self.ft.clear();
        self.occupancy = 0;
        for (set_idx, (set, snap_set)) in self.sets.iter_mut().zip(&snap.sets).enumerate() {
            assert_eq!(snap_set.len(), set.len(), "FBT snapshot way count mismatch");
            for (way, (slot, snap_slot)) in set.iter_mut().zip(snap_set).enumerate() {
                *slot = snap_slot.as_ref().map(|s| Slot {
                    entry: s.entry,
                    last_use: s.last_use,
                });
                if let Some(s) = snap_slot {
                    self.ft.insert(
                        s.entry.leading,
                        BtIndex {
                            set: set_idx as u32,
                            way: way as u32,
                        },
                    );
                    self.occupancy += 1;
                }
            }
        }
        self.use_clock = snap.use_clock;
        self.max_occupancy = snap.max_occupancy as usize;
        self.usable_ways = snap.usable_ways as usize;
        self.stats = snap.stats;
    }

    /// Verifies internal consistency (tests and debug harnesses):
    /// every FT entry points at a resident BT entry with the matching
    /// leading VA, every BT entry is indexed by the FT, and no PPN
    /// appears twice.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    pub fn check_consistency(&self) {
        let mut seen_ppn = std::collections::HashSet::new();
        let mut bt_count = 0;
        for (idx, e) in self.iter() {
            assert!(seen_ppn.insert(e.ppn), "duplicate PPN {} in BT", e.ppn);
            assert_eq!(
                self.ft.get(&e.leading),
                Some(&idx),
                "BT entry {:?} not indexed by FT",
                e.leading
            );
            bt_count += 1;
        }
        assert_eq!(bt_count, self.ft.len(), "FT size != BT size");
        assert_eq!(bt_count, self.occupancy, "occupancy counter drift");
    }
}

/// One occupied BT slot in a snapshot (see [`Fbt::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FbtSlotSnapshot {
    /// The resident entry.
    pub entry: BtEntry,
    /// LRU timestamp.
    pub last_use: u64,
}

/// Full serializable state of an [`Fbt`] (see [`Fbt::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FbtSnapshot {
    /// Configuration (validated on restore).
    pub config: FbtConfig,
    /// Per-set slots with holes preserved (way positions are part of
    /// the observable state — [`BtIndex`] encodes them).
    pub sets: Vec<Vec<Option<FbtSlotSnapshot>>>,
    /// LRU clock.
    pub use_clock: u64,
    /// High-water mark of resident entries.
    pub max_occupancy: u64,
    /// Fault-injection way restriction currently in force.
    pub usable_ways: u64,
    /// Statistics so far.
    pub stats: FbtStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fbt {
        Fbt::new(FbtConfig {
            entries: 8,
            ways: 2,
            lookup_latency: 5,
            counter_mode: false,
        })
    }

    fn lead(asid: u16, vpn: u64) -> LeadingVa {
        LeadingVa {
            asid: Asid(asid),
            vpn: Vpn::new(vpn),
        }
    }

    #[test]
    fn insert_and_bidirectional_lookup() {
        let mut fbt = small();
        let (idx, ev) = fbt.insert(Ppn::new(3), Asid(1), Vpn::new(50), Perms::READ_WRITE);
        assert!(ev.is_none());
        assert_eq!(fbt.lookup_ppn(Ppn::new(3)), Some(idx));
        assert_eq!(fbt.lookup_va(Asid(1), Vpn::new(50)), Some(idx));
        assert_eq!(fbt.lookup_va(Asid(2), Vpn::new(50)), None, "homonym misses");
        assert_eq!(fbt.entry(idx).leading, lead(1, 50));
        assert_eq!(fbt.occupancy(), 1);
        fbt.check_consistency();
    }

    #[test]
    fn translate_acts_as_second_level_tlb() {
        let mut fbt = small();
        fbt.insert(Ppn::new(9), Asid(0), Vpn::new(7), Perms::READ_ONLY);
        assert_eq!(
            fbt.translate(Asid(0), Vpn::new(7)),
            Some((Ppn::new(9), Perms::READ_ONLY))
        );
        assert_eq!(fbt.translate(Asid(0), Vpn::new(8)), None);
        let s = fbt.stats();
        assert_eq!(s.ft_lookups.get(), 2);
        assert_eq!(s.ft_hits.get(), 1);
    }

    #[test]
    fn eviction_prefers_empty_presence() {
        let mut fbt = small(); // 4 sets x 2 ways
                               // Two pages in the same set (set = ppn % 4): ppn 0 and 4.
        let (i0, _) = fbt.insert(Ppn::new(0), Asid(0), Vpn::new(10), Perms::READ_WRITE);
        let (_i4, _) = fbt.insert(Ppn::new(4), Asid(0), Vpn::new(11), Perms::READ_WRITE);
        // Page 0 has cached lines; page 4 does not. Page 0 is also LRU.
        fbt.entry_mut(i0).presence.set(3);
        let (_, evicted) = fbt.insert(Ppn::new(8), Asid(0), Vpn::new(12), Perms::READ_WRITE);
        let e = evicted.expect("set was full");
        assert_eq!(
            e.ppn,
            Ppn::new(4),
            "empty-presence entry preferred over LRU"
        );
        fbt.check_consistency();
    }

    #[test]
    fn eviction_falls_back_to_lru() {
        let mut fbt = small();
        let (i0, _) = fbt.insert(Ppn::new(0), Asid(0), Vpn::new(10), Perms::READ_WRITE);
        let (i4, _) = fbt.insert(Ppn::new(4), Asid(0), Vpn::new(11), Perms::READ_WRITE);
        fbt.entry_mut(i0).presence.set(1);
        fbt.entry_mut(i4).presence.set(2);
        fbt.lookup_ppn(Ppn::new(0)); // 0 becomes MRU
        let (_, evicted) = fbt.insert(Ppn::new(8), Asid(0), Vpn::new(12), Perms::READ_WRITE);
        assert_eq!(evicted.unwrap().ppn, Ppn::new(4));
        assert_eq!(fbt.stats().dirty_evictions.get(), 1);
    }

    #[test]
    fn locked_entries_are_never_victims() {
        let mut fbt = small();
        let (i0, _) = fbt.insert(Ppn::new(0), Asid(0), Vpn::new(10), Perms::READ_WRITE);
        let (i4, _) = fbt.insert(Ppn::new(4), Asid(0), Vpn::new(11), Perms::READ_WRITE);
        fbt.entry_mut(i0).locked = true;
        fbt.entry_mut(i0).presence.set(1); // locked AND has lines
        fbt.entry_mut(i4).presence.set(1);
        let (_, evicted) = fbt.insert(Ppn::new(8), Asid(0), Vpn::new(12), Perms::READ_WRITE);
        assert_eq!(evicted.unwrap().ppn, Ppn::new(4), "locked entry skipped");
    }

    #[test]
    fn remove_invalidates_ft() {
        let mut fbt = small();
        let (idx, _) = fbt.insert(Ppn::new(5), Asid(0), Vpn::new(20), Perms::READ_WRITE);
        let e = fbt.remove(idx);
        assert_eq!(e.ppn, Ppn::new(5));
        assert_eq!(fbt.lookup_va(Asid(0), Vpn::new(20)), None);
        assert_eq!(fbt.lookup_ppn(Ppn::new(5)), None);
        assert_eq!(fbt.occupancy(), 0);
        fbt.check_consistency();
    }

    #[test]
    fn remove_asid_sweeps_one_space() {
        let mut fbt = small();
        fbt.insert(Ppn::new(0), Asid(1), Vpn::new(1), Perms::READ_WRITE);
        fbt.insert(Ppn::new(1), Asid(2), Vpn::new(2), Perms::READ_WRITE);
        fbt.insert(Ppn::new(2), Asid(1), Vpn::new(3), Perms::READ_WRITE);
        let removed = fbt.remove_asid(Asid(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(fbt.occupancy(), 1);
        fbt.check_consistency();
    }

    #[test]
    fn counter_mode_entries_use_counters() {
        let mut fbt = Fbt::new(FbtConfig {
            counter_mode: true,
            ..FbtConfig::default()
        });
        let (idx, _) = fbt.insert(Ppn::new(1), Asid(0), Vpn::new(1), Perms::READ_WRITE);
        assert!(!fbt.entry(idx).presence.is_exact());
    }

    #[test]
    fn max_occupancy_tracks_high_water() {
        let mut fbt = small();
        fbt.insert(Ppn::new(0), Asid(0), Vpn::new(1), Perms::READ_WRITE);
        let (idx, _) = fbt.insert(Ppn::new(1), Asid(0), Vpn::new(2), Perms::READ_WRITE);
        fbt.remove(idx);
        assert_eq!(fbt.occupancy(), 1);
        assert_eq!(fbt.max_occupancy(), 2);
    }

    #[test]
    fn iter_and_consistency_on_larger_population() {
        let mut fbt = Fbt::new(FbtConfig::default());
        for i in 0..1000 {
            fbt.insert(
                Ppn::new(i),
                Asid(0),
                Vpn::new(10_000 + i),
                Perms::READ_WRITE,
            );
        }
        assert_eq!(fbt.iter().count(), 1000);
        fbt.check_consistency();
    }

    #[test]
    fn shrunken_usable_ways_forces_conflict_evictions() {
        let mut fbt = small(); // 4 sets x 2 ways
        fbt.set_usable_ways(1);
        assert_eq!(fbt.usable_ways(), 1);
        // Same set (ppn % 4 == 0): with one usable way the second
        // insert must evict the first even though way 1 is empty.
        let (_, ev0) = fbt.insert(Ppn::new(0), Asid(0), Vpn::new(10), Perms::READ_WRITE);
        assert!(ev0.is_none());
        let (_, ev1) = fbt.insert(Ppn::new(4), Asid(0), Vpn::new(11), Perms::READ_WRITE);
        assert_eq!(ev1.expect("pressure evicts").ppn, Ppn::new(0));
        fbt.check_consistency();
        // Restoring capacity reopens way 1.
        fbt.set_usable_ways(2);
        let (_, ev2) = fbt.insert(Ppn::new(8), Asid(0), Vpn::new(12), Perms::READ_WRITE);
        assert!(ev2.is_none(), "full capacity uses the empty way again");
        // Out-of-range values clamp instead of panicking.
        fbt.set_usable_ways(0);
        assert_eq!(fbt.usable_ways(), 1);
        fbt.set_usable_ways(99);
        assert_eq!(fbt.usable_ways(), 2);
    }

    #[test]
    fn resident_entries_outside_usable_ways_stay_findable() {
        let mut fbt = small();
        // Fill both ways of set 0 at full capacity.
        let (_, _) = fbt.insert(Ppn::new(0), Asid(0), Vpn::new(10), Perms::READ_WRITE);
        let (i4, _) = fbt.insert(Ppn::new(4), Asid(0), Vpn::new(11), Perms::READ_WRITE);
        assert_eq!(i4.way, 1);
        fbt.set_usable_ways(1);
        // The way-1 entry is immune from eviction during the window...
        let (_, ev) = fbt.insert(Ppn::new(8), Asid(0), Vpn::new(12), Perms::READ_WRITE);
        assert_eq!(ev.expect("way 0 evicted").ppn, Ppn::new(0));
        // ...and still resolves by both directions.
        assert_eq!(fbt.lookup_ppn(Ppn::new(4)), Some(i4));
        assert_eq!(fbt.lookup_va(Asid(0), Vpn::new(11)), Some(i4));
        fbt.check_consistency();
    }

    #[test]
    fn snapshot_restore_is_behaviorally_identical() {
        let mut fbt = small();
        let (i0, _) = fbt.insert(Ppn::new(0), Asid(0), Vpn::new(10), Perms::READ_WRITE);
        fbt.insert(Ppn::new(4), Asid(0), Vpn::new(11), Perms::READ_WRITE);
        fbt.insert(Ppn::new(1), Asid(1), Vpn::new(20), Perms::READ_ONLY);
        fbt.entry_mut(i0).presence.set(3);
        fbt.entry_mut(i0).written = true;
        fbt.lookup_ppn(Ppn::new(4)); // recency matters for victims
        fbt.set_usable_ways(1);

        let snap = fbt.snapshot();
        let mut restored = Fbt::new(snap.config);
        restored.restore(&snap);
        assert_eq!(restored.snapshot(), snap, "restore is a fixed point");
        restored.check_consistency();

        // Lockstep: inserts must pick identical victims (LRU clocks,
        // presence, and the usable-ways restriction all restored).
        for i in 0..8 {
            let a = fbt.insert(
                Ppn::new(100 + i * 4),
                Asid(2),
                Vpn::new(1000 + i),
                Perms::READ_WRITE,
            );
            let b = restored.insert(
                Ppn::new(100 + i * 4),
                Asid(2),
                Vpn::new(1000 + i),
                Perms::READ_WRITE,
            );
            assert_eq!(a, b, "insert {i} diverged");
        }
        assert_eq!(fbt.snapshot(), restored.snapshot());
    }

    #[test]
    #[should_panic(expected = "config mismatch")]
    fn restore_rejects_mismatched_config() {
        let fbt = small();
        let snap = fbt.snapshot();
        let mut other = Fbt::new(FbtConfig::default());
        other.restore(&snap);
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn bad_geometry_rejected() {
        let _ = Fbt::new(FbtConfig {
            entries: 10,
            ways: 4,
            lookup_latency: 5,
            counter_mode: false,
        });
    }
}
