//! Property-based tests on the core data structures and the virtual
//! hierarchy's cross-structure invariants.

use gvc::fbt::{Fbt, FbtConfig};
use gvc::{LineAccess, MemorySystem, SynonymPolicy, SystemConfig};
use gvc_cache::{CacheConfig, LineKey, SetAssocCache};
use gvc_engine::{Cycle, ThroughputPort, TokenPort};
use gvc_mem::{Asid, OsLite, PageTable, Perms, PhysMem, Ppn, Vpn, PAGE_BYTES};
use gvc_tlb::tlb::{Tlb, TlbConfig, TlbKey};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The page table agrees with a HashMap model under arbitrary
    /// map/unmap/protect sequences.
    #[test]
    fn page_table_matches_model(ops in prop::collection::vec((0u8..3, 0u64..200), 1..200)) {
        let mut pm = PhysMem::new(64 << 20);
        let mut pt = PageTable::new(&mut pm).unwrap();
        let mut model: HashMap<u64, (Ppn, Perms)> = HashMap::new();
        let mut next_frame = 0u64;
        for (op, page) in ops {
            // Spread VPNs across levels to stress the radix structure.
            let vpn = Vpn::new(page * 0x40_0081 % (1 << 30));
            match op {
                0 => {
                    model.entry(vpn.raw()).or_insert_with(|| {
                        let frame = Ppn::new(0x1000 + next_frame);
                        next_frame += 1;
                        pt.map(&mut pm, vpn, frame, Perms::READ_WRITE).unwrap();
                        (frame, Perms::READ_WRITE)
                    });
                }
                1 => {
                    let expected = model.remove(&vpn.raw());
                    let got = pt.unmap(&mut pm, vpn).ok();
                    prop_assert_eq!(got, expected.map(|(f, _)| f));
                }
                _ => {
                    if model.contains_key(&vpn.raw()) {
                        pt.protect(&mut pm, vpn, Perms::READ_ONLY).unwrap();
                        model.get_mut(&vpn.raw()).unwrap().1 = Perms::READ_ONLY;
                    }
                }
            }
            prop_assert_eq!(pt.mapped_pages() as usize, model.len());
        }
        for (vpn, (frame, perms)) in &model {
            prop_assert_eq!(pt.translate(&pm, Vpn::new(*vpn)), Some((*frame, *perms)));
        }
    }

    /// A bounded TLB never exceeds capacity and always returns what
    /// was last inserted for a resident key.
    #[test]
    fn tlb_capacity_and_recency(keys in prop::collection::vec(0u64..100, 1..300)) {
        let mut tlb = Tlb::new(TlbConfig::per_cu(16));
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            let key = TlbKey::new(Asid(0), Vpn::new(*k));
            if let Some(e) = tlb.lookup(key, Cycle::new(i as u64)) {
                prop_assert_eq!(e.ppn.raw(), model[k], "hit returns last insert");
            } else {
                tlb.insert(key, Ppn::new(i as u64), Perms::READ_WRITE, Cycle::new(i as u64));
                model.insert(*k, i as u64);
            }
            prop_assert!(tlb.len() <= 16);
        }
    }

    /// A set-associative cache never exceeds capacity and never holds
    /// a key twice.
    #[test]
    fn cache_capacity_and_uniqueness(lines in prop::collection::vec(0u64..4096, 1..500)) {
        let mut cache = SetAssocCache::new(CacheConfig::gpu_l1());
        for (i, line) in lines.iter().enumerate() {
            let key = LineKey::new(Asid(0), *line);
            cache.insert(key, Perms::READ_WRITE, i % 3 == 0, Cycle::new(i as u64));
            prop_assert!(cache.len() <= cache.config().lines());
        }
        let mut seen = std::collections::HashSet::new();
        for l in cache.iter() {
            prop_assert!(seen.insert(l.key), "duplicate key {:?}", l.key);
        }
    }

    /// FBT bidirectional consistency under arbitrary insert/remove
    /// interleavings.
    #[test]
    fn fbt_ft_bt_agree(ops in prop::collection::vec((any::<bool>(), 0u64..64), 1..300)) {
        let mut fbt = Fbt::new(FbtConfig { entries: 32, ways: 4, lookup_latency: 5, counter_mode: false });
        for (insert, page) in ops {
            let ppn = Ppn::new(page);
            if insert {
                if fbt.lookup_ppn(ppn).is_none() {
                    fbt.insert(ppn, Asid(0), Vpn::new(1000 + page), Perms::READ_WRITE);
                }
            } else if let Some(idx) = fbt.lookup_ppn(ppn) {
                fbt.remove(idx);
            }
            fbt.check_consistency();
        }
    }

    /// Ports service FIFO and never travel back in time.
    #[test]
    fn ports_are_monotone(arrivals in prop::collection::vec(0u64..1000, 1..200), width in 1u32..4) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut port = ThroughputPort::per_cycle(width);
        let mut token = TokenPort::new(64);
        let mut last_service = Cycle::ZERO;
        let mut last_transfer = Cycle::ZERO;
        for a in sorted {
            let s = port.reserve(Cycle::new(a));
            prop_assert!(s >= Cycle::new(a));
            prop_assert!(s >= last_service, "FIFO order");
            last_service = s;
            let tr = token.transfer(Cycle::new(a), 100);
            prop_assert!(tr >= last_transfer);
            last_transfer = tr;
        }
    }

    /// The virtual hierarchy's cross-structure invariants survive
    /// arbitrary read/write streams with synonym aliasing, and
    /// read-only streams never fault.
    #[test]
    fn virtual_hierarchy_invariants_hold(
        accesses in prop::collection::vec((0u64..32, 0u64..32, any::<bool>(), any::<bool>()), 1..400)
    ) {
        let mut os = OsLite::new(256 << 20);
        let pid = os.create_process();
        let region = os.mmap(pid, 32 * PAGE_BYTES, Perms::READ_WRITE).unwrap();
        let alias = os.mmap_alias(pid, region).unwrap();
        let mut cfg = SystemConfig::vc_with_opt();
        // Replay policy so random read/write mixes are legal.
        cfg.synonym_policy = SynonymPolicy::ReplayAlways;
        cfg.fbt = cfg.fbt.with_entries(32); // force FBT evictions too
        let mut mem = MemorySystem::new(cfg);
        let mut t = Cycle::ZERO;
        for (i, (page, line, via_alias, is_write)) in accesses.iter().enumerate() {
            let base = if *via_alias { &alias } else { &region };
            let a = LineAccess {
                cu: i % 16,
                asid: pid.asid(),
                vaddr: base.addr_at(page * PAGE_BYTES + line * 128),
                is_write: *is_write,
                at: t,
            };
            let r = mem.access(a, &os);
            prop_assert!(r.fault.is_none(), "replay policy never faults");
            prop_assert!(r.done_at >= t);
            t = r.done_at;
        }
        mem.check_virtual_invariants();
    }

    /// Under the fault policy, read-write synonym faults are the only
    /// faults a mapped read/write stream can raise.
    #[test]
    fn fault_policy_faults_are_rw_synonyms_only(
        accesses in prop::collection::vec((0u64..16, any::<bool>(), any::<bool>()), 1..200)
    ) {
        let mut os = OsLite::new(128 << 20);
        let pid = os.create_process();
        let region = os.mmap(pid, 16 * PAGE_BYTES, Perms::READ_WRITE).unwrap();
        let alias = os.mmap_alias(pid, region).unwrap();
        let mut mem = MemorySystem::new(SystemConfig::vc_with_opt());
        let mut t = Cycle::ZERO;
        for (i, (page, via_alias, is_write)) in accesses.iter().enumerate() {
            let base = if *via_alias { &alias } else { &region };
            let a = LineAccess {
                cu: i % 16,
                asid: pid.asid(),
                vaddr: base.addr_at(page * PAGE_BYTES),
                is_write: *is_write,
                at: t,
            };
            let r = mem.access(a, &os);
            if let Some(fault) = r.fault {
                prop_assert_eq!(fault, gvc::AccessFault::ReadWriteSynonym);
            }
            t = r.done_at;
        }
        mem.check_virtual_invariants();
    }
}
