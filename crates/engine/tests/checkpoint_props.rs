//! Property tests for the checkpoint serialization laws the soak
//! harness leans on:
//!
//! 1. **Fixed point** — `snapshot → restore → snapshot` reproduces the
//!    snapshot exactly, and the restored object behaves identically to
//!    the original from that point on.
//! 2. **Lossless text round-trip** — every checkpointed stat survives
//!    `to_value → JSON text → parse → from_value` bit-for-bit (floats
//!    print in shortest round-trip form, so this holds for `f64` too).
//! 3. **Restored-stats merge equals uninterrupted** — a value stream
//!    chopped into epoch-sized pieces, each flushed through a
//!    serialized checkpoint and merged back, is indistinguishable from
//!    one accumulator that never stopped.

use gvc_engine::{Cycle, Duration, Histogram, IntervalSampler, RateAccum, SimRng};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// JSON text round-trip through the same path the soak checkpoint
/// files take (`to_value → to_string_pretty → from_str → from_value`).
fn json_round_trip<T: Serialize + Deserialize>(x: &T) -> T {
    let text = serde_json::to_string_pretty(&x.to_value()).expect("serialize");
    let value: serde::Value = serde_json::from_str(&text).expect("parse");
    T::from_value(&value).expect("deserialize")
}

proptest! {
    #[test]
    fn rng_snapshot_restore_is_a_fixed_point(
        seed in any::<u64>(),
        warmup in 0usize..64,
        draws in 1usize..32,
    ) {
        let mut rng = SimRng::seeded(seed);
        for _ in 0..warmup {
            rng.below(1000);
        }
        let snap = rng.snapshot();
        let mut restored = SimRng::from_snapshot(snap);
        prop_assert_eq!(restored.snapshot(), snap, "snapshot/restore fixed point");
        for _ in 0..draws {
            prop_assert_eq!(restored.below(u64::MAX), rng.below(u64::MAX));
        }
        // Forked child streams derive from the snapshotted base seed,
        // so restoring preserves the whole fork tree.
        prop_assert_eq!(
            SimRng::from_snapshot(snap).fork(7).snapshot(),
            rng.fork(7).snapshot()
        );
    }

    #[test]
    fn rng_snapshot_survives_json_text(seed in any::<u64>(), warmup in 0usize..64) {
        let mut rng = SimRng::seeded(seed);
        for _ in 0..warmup {
            rng.below(1000);
        }
        let snap = rng.snapshot();
        prop_assert_eq!(json_round_trip(&snap), snap);
    }

    #[test]
    fn histogram_survives_json_text_exactly(
        xs in prop::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let back = json_round_trip(&h);
        prop_assert_eq!(&back, &h);
        prop_assert_eq!(back.quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn histogram_checkpointed_epochs_merge_to_uninterrupted(
        xs in prop::collection::vec(0u64..1_000_000, 0..96),
        epoch_len in 1usize..16,
    ) {
        let mut uninterrupted = Histogram::new();
        for &x in &xs {
            uninterrupted.record(x);
        }
        // Record each epoch into a fresh histogram, push it through a
        // serialized checkpoint, and merge the restored pieces.
        let mut merged = Histogram::new();
        for chunk in xs.chunks(epoch_len) {
            let mut epoch = Histogram::new();
            for &x in chunk {
                epoch.record(x);
            }
            merged.merge(&json_round_trip(&epoch));
        }
        prop_assert_eq!(&merged, &uninterrupted);
        prop_assert_eq!(merged.quantile(0.5), uninterrupted.quantile(0.5));
        prop_assert_eq!(merged.quantile(0.99), uninterrupted.quantile(0.99));
    }

    #[test]
    fn rate_accum_merge_survives_checkpoints(
        counts in prop::collection::vec(0u64..1_000, 0..64),
        split in 0usize..64,
        interval in 1u64..2_000,
    ) {
        let split = split.min(counts.len());
        let mut uninterrupted = RateAccum::new(Duration::new(interval));
        for &c in &counts {
            uninterrupted.absorb(c);
        }
        let mut left = RateAccum::new(Duration::new(interval));
        for &c in &counts[..split] {
            left.absorb(c);
        }
        let mut right = RateAccum::new(Duration::new(interval));
        for &c in &counts[split..] {
            right.absorb(c);
        }
        // Checkpoint both halves through JSON before merging.
        let mut merged = json_round_trip(&left);
        merged.merge(&json_round_trip(&right));
        prop_assert_eq!(&merged, &uninterrupted);
        prop_assert_eq!(merged.summary(), uninterrupted.summary());
    }

    #[test]
    fn spilled_sampler_checkpoint_resume_equals_uninterrupted(
        events in prop::collection::vec(0u64..40_000, 0..128),
        interval in 1u64..700,
        epoch_cycles in 100u64..10_000,
        cut_epoch in 0u64..8,
    ) {
        let mut events = events;
        events.sort_unstable();
        let end = Cycle::new(events.last().copied().unwrap_or(0) + 1);
        let interval = Duration::new(interval);

        // The uninterrupted run: record everything, spilling at every
        // epoch boundary as the soak loop does.
        let (ref_sampler, ref_acc) = drive(&events, interval, epoch_cycles, None);
        let reference = ref_sampler.finish_into(end, &ref_acc);

        // The interrupted run: at epoch boundary `cut_epoch`, push the
        // sampler and accumulator through a serialized checkpoint,
        // then keep going on the restored copies.
        let (cut_sampler, cut_acc) = drive(&events, interval, epoch_cycles, Some(cut_epoch));
        let resumed = cut_sampler.finish_into(end, &cut_acc);

        prop_assert_eq!(resumed, reference, "checkpoint cut must be invisible");
        // Bounded-memory contract: the resident window never exceeds
        // one epoch of intervals (+1 for the partial tail interval).
        let bound = (epoch_cycles / interval.raw() + 2) as usize;
        prop_assert!(ref_sampler.counts().len() <= bound.max(1));
    }
}

/// Replays `events` into a sampler, spilling complete intervals into a
/// [`RateAccum`] at every `epoch_cycles` boundary. When `cut` names an
/// epoch, the sampler + accumulator are round-tripped through JSON at
/// that boundary (the checkpoint) before the replay continues.
fn drive(
    events: &[u64],
    interval: Duration,
    epoch_cycles: u64,
    cut: Option<u64>,
) -> (IntervalSampler, RateAccum) {
    let mut sampler = IntervalSampler::new(interval);
    let mut acc = RateAccum::new(interval);
    let mut epoch = 0u64;
    for &at in events {
        while at >= (epoch + 1) * epoch_cycles {
            epoch += 1;
            sampler.spill_into(Cycle::new(epoch * epoch_cycles), &mut acc);
            if cut == Some(epoch) {
                sampler = json_round_trip(&sampler);
                acc = json_round_trip(&acc);
            }
        }
        sampler.record(Cycle::new(at));
    }
    (sampler, acc)
}
