//! Deterministic fault injection: adversarial events, replayable from
//! a seed.
//!
//! The paper's correctness argument (§4) rests on rare events — TLB
//! shootdowns arriving mid-kernel (§4.2), CPU coherence probes that
//! the FBT must filter or honor (§4.2), page faults and slow IOMMU
//! walks, FBT capacity overflow forcing the flush path (§4.2), and
//! dynamic page remaps (§4.3). The synthetic workloads emit none of
//! these on their own, so sweeps only ever exercise the happy path.
//! This module injects all of them *deterministically*: an
//! [`InjectPlan`] is derived from a [`SimRng`] seed carried in
//! [`InjectConfig`], every decision is a fixed number of draws from
//! that generator, and no decision depends on wall-clock time or
//! thread scheduling — so a run with injection enabled is replayable
//! byte-identically from `(workload, config, scale, seed)` alone,
//! exactly like an uninjected run.
//!
//! Event classes:
//!
//! * **Shootdown storms** — a burst of [`Shootdown::Pages`] against
//!   recently touched pages, driven through the same coherence path
//!   the OS uses ([`crate::hierarchy::MemorySystem::apply_shootdown`]).
//! * **Probe bursts** — CPU coherence probes against the physical
//!   frames backing recently touched pages (the FBT's backward
//!   translation must filter or honor each one).
//! * **FBT capacity pressure** — temporarily shrinks the usable FBT
//!   ways ([`crate::fbt::Fbt::set_usable_ways`]) so inserts contend
//!   for a sliver of the table and the §4.2 overflow/flush path runs.
//! * **Page remaps** — `OsLite::remap_page` moves a live page to a new
//!   physical frame mid-kernel and the resulting shootdown is applied,
//!   the Mosaic-style migration the §4.3 discussion anticipates.
//! * **Huge-page splinters** — `OsLite::splinter` demotes the 2 MB
//!   block under a hot page back to 4 KB mappings, the fragmentation
//!   back-off every transparent-huge-page OS performs; the shootdown
//!   must purge the block's reach-TLB entry everywhere.
//! * **Walker faults and latency spikes** — injected inside the IOMMU
//!   walk path itself (see `gvc_tlb::iommu::WalkInjectConfig`); the
//!   plan only carries their rates.
//!
//! The plan picks *which* pages to attack from a small ring of
//! recently observed `(asid, vpn)` pairs, so injected events hit pages
//! the hierarchy actually has state for — a shootdown of a never-
//! touched page exercises nothing.

use crate::config::SystemConfig;
use gvc_engine::{RngSnapshot, SimRng};
use gvc_mem::{Asid, Shootdown, Vpn, LINES_PER_PAGE};
use serde::{Deserialize, Serialize};

/// Rates are expressed in parts-per-million per memory instruction so
/// the whole config stays integral (and therefore `Eq + Hash`, which
/// the bench runner's memo-cache key requires).
pub const PPM: u64 = 1_000_000;

/// How many recently touched pages the plan remembers as candidate
/// targets.
const HOT_RING: usize = 32;

/// RNG stream ids (forked off the seed) for the plan and the walker,
/// so the two injection sites draw from independent sequences.
const PLAN_STREAM: u64 = 0x1;
/// See [`PLAN_STREAM`].
const WALKER_STREAM: u64 = 0x2;

/// Configuration of the deterministic fault-injection layer.
///
/// All fields are integers: rates in parts-per-million (see [`PPM`])
/// per *memory instruction* (for plan-level events) or per *IOMMU
/// walk* (for walker-level events). This keeps the type `Copy + Eq +
/// Hash`, so it can ride inside [`SystemConfig`] and the bench
/// runner's memo key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InjectConfig {
    /// Seed for all injection decisions. Independent of the workload
    /// seed: the same workload can be soaked under many fault
    /// schedules.
    pub seed: u64,
    /// Shootdown-storm rate (ppm per memory instruction).
    pub storm_ppm: u32,
    /// CPU probe-burst rate (ppm per memory instruction).
    pub probe_ppm: u32,
    /// FBT capacity-pressure rate (ppm per memory instruction).
    pub pressure_ppm: u32,
    /// Mid-kernel page-remap rate (ppm per memory instruction).
    pub remap_ppm: u32,
    /// Huge-page splinter rate (ppm per memory instruction): demotes
    /// the 2 MB block under a hot page back to 512 discrete 4 KB
    /// mappings, modelling the OS backing off transparent huge pages
    /// under memory fragmentation. A hot page that is not part of a
    /// large mapping is skipped (counted, never fatal).
    pub splinter_ppm: u32,
    /// Spurious page-fault rate at the IOMMU walker (ppm per walk).
    pub fault_ppm: u32,
    /// Walk-latency-spike rate at the IOMMU walker (ppm per walk).
    pub spike_ppm: u32,
    /// Pages per shootdown storm.
    pub storm_pages: u32,
    /// Probes per burst.
    pub burst_probes: u32,
    /// Accesses a pressure window lasts before full FBT ways return.
    pub pressure_window: u32,
    /// Usable FBT ways while a pressure window is active.
    pub pressure_ways: u32,
    /// Extra cycles a spiked walk takes.
    pub spike_cycles: u64,
}

impl InjectConfig {
    /// A config injecting every legacy event class at the same
    /// `rate_ppm`, with the default shape parameters. This is what
    /// `repro --inject <rate>` builds. Splintering defaults to *off*
    /// here so the decision stream of a given `(rate, seed)` pair is
    /// unchanged from before huge pages existed; opt in with
    /// [`InjectConfig::with_splinter`].
    pub fn uniform(rate_ppm: u32, seed: u64) -> Self {
        InjectConfig {
            seed,
            storm_ppm: rate_ppm,
            probe_ppm: rate_ppm,
            pressure_ppm: rate_ppm,
            remap_ppm: rate_ppm,
            splinter_ppm: 0,
            fault_ppm: rate_ppm,
            spike_ppm: rate_ppm,
            storm_pages: 4,
            burst_probes: 4,
            pressure_window: 256,
            pressure_ways: 1,
            spike_cycles: 500,
        }
    }

    /// Enables fragmentation-driven huge-page splintering at
    /// `rate_ppm` (see [`InjectConfig::splinter_ppm`]).
    pub fn with_splinter(mut self, rate_ppm: u32) -> Self {
        self.splinter_ppm = rate_ppm;
        self
    }

    /// Seed for the plan-level generator (storms, probes, pressure,
    /// remaps).
    pub fn plan_seed(&self) -> u64 {
        SimRng::seeded(self.seed).fork(PLAN_STREAM).next_u64()
    }

    /// Seed for the walker-level generator (spurious faults, latency
    /// spikes). Forked on a different stream than [`plan_seed`]
    /// (`InjectConfig::plan_seed`) so the two sites are independent.
    pub fn walker_seed(&self) -> u64 {
        SimRng::seeded(self.seed).fork(WALKER_STREAM).next_u64()
    }
}

/// A single probe the plan wants delivered. The caller (which owns the
/// OS) translates the page and forwards a coherence probe at the
/// backing frame; an unmapped page is skipped (counted, never fatal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeTarget {
    /// Address space of the targeted page.
    pub asid: Asid,
    /// The targeted virtual page.
    pub vpn: Vpn,
    /// Which line within the page to probe.
    pub line: u32,
    /// `true` for an invalidating probe, `false` for a downgrade.
    pub invalidate: bool,
}

/// One injected event, ready for the run loop to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectEvent {
    /// Apply a TLB shootdown covering a burst of hot pages.
    Shootdown(Shootdown),
    /// Deliver a burst of CPU coherence probes.
    ProbeBurst(Vec<ProbeTarget>),
    /// Shrink the usable FBT ways to `ways` for `window` accesses.
    FbtPressure {
        /// Usable ways during the window.
        ways: usize,
        /// Window length in memory-system accesses.
        window: u32,
    },
    /// Remap one hot page to a fresh physical frame mid-kernel.
    Remap {
        /// Address space of the remapped page.
        asid: Asid,
        /// The page to migrate.
        vpn: Vpn,
    },
    /// Splinter the 2 MB mapping under one hot page back to 4 KB
    /// pages (skipped if the page is not large-mapped).
    Splinter {
        /// Address space of the targeted page.
        asid: Asid,
        /// Any page inside the block to demote.
        vpn: Vpn,
    },
}

/// What the plan injected over one run. Walker-level events are
/// counted separately in `IommuStats` (`injected_faults`,
/// `injected_spikes`) because they fire inside the walk path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectReport {
    /// Shootdown storms applied.
    pub storms: u64,
    /// Total pages covered by injected shootdowns.
    pub storm_pages: u64,
    /// Probe bursts issued.
    pub probe_bursts: u64,
    /// Individual probes delivered (unmapped targets excluded).
    pub probes: u64,
    /// Probes skipped because the target page was no longer mapped.
    pub probes_skipped: u64,
    /// FBT pressure windows opened.
    pub pressure_windows: u64,
    /// Page remaps that succeeded (shootdown applied).
    pub remaps: u64,
    /// Remap attempts that failed (page gone or part of a large
    /// mapping) — skipped, never fatal.
    pub remaps_failed: u64,
    /// Huge-page splinters that succeeded (shootdown applied).
    pub splinters: u64,
    /// Splinter attempts that found no large mapping under the target
    /// — skipped, never fatal.
    pub splinters_failed: u64,
}

/// The deterministic fault-injection plan: a seeded generator plus a
/// ring of recently touched pages.
///
/// The run loop calls [`observe`](Self::observe) for every line access
/// and [`poll`](Self::poll) once per memory instruction; `poll` makes
/// exactly one rate draw (plus a bounded number of target-picking
/// draws when an event fires), so the decision sequence is a pure
/// function of the seed and the access stream.
#[derive(Debug, Clone)]
pub struct InjectPlan {
    cfg: InjectConfig,
    rng: SimRng,
    hot: Vec<(Asid, Vpn)>,
    hot_next: usize,
    report: InjectReport,
}

impl InjectPlan {
    /// Builds the plan for `cfg`.
    pub fn new(cfg: InjectConfig) -> Self {
        InjectPlan {
            cfg,
            rng: SimRng::seeded(cfg.plan_seed()),
            hot: Vec::with_capacity(HOT_RING),
            hot_next: 0,
            report: InjectReport::default(),
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &InjectConfig {
        &self.cfg
    }

    /// Records a touched page as a future injection target.
    pub fn observe(&mut self, asid: Asid, vpn: Vpn) {
        if self.hot.last() == Some(&(asid, vpn)) {
            return; // consecutive lines of one page collapse to one slot
        }
        if self.hot.len() < HOT_RING {
            self.hot.push((asid, vpn));
        } else {
            self.hot[self.hot_next] = (asid, vpn);
            self.hot_next = (self.hot_next + 1) % HOT_RING;
        }
    }

    /// Rolls the per-instruction dice. At most one event class fires
    /// per instruction; the cumulative-threshold comparison spends a
    /// single draw when nothing fires.
    pub fn poll(&mut self) -> Option<InjectEvent> {
        if self.hot.is_empty() {
            return None; // nothing to aim at yet
        }
        let u = self.rng.below(PPM);
        let mut threshold = self.cfg.storm_ppm as u64;
        if u < threshold {
            return Some(self.storm());
        }
        threshold += self.cfg.probe_ppm as u64;
        if u < threshold {
            return Some(self.burst());
        }
        threshold += self.cfg.pressure_ppm as u64;
        if u < threshold {
            self.report.pressure_windows += 1;
            return Some(InjectEvent::FbtPressure {
                ways: self.cfg.pressure_ways.max(1) as usize,
                window: self.cfg.pressure_window.max(1),
            });
        }
        threshold += self.cfg.remap_ppm as u64;
        if u < threshold {
            let (asid, vpn) = self.pick_hot();
            return Some(InjectEvent::Remap { asid, vpn });
        }
        threshold += self.cfg.splinter_ppm as u64;
        if u < threshold {
            let (asid, vpn) = self.pick_hot();
            return Some(InjectEvent::Splinter { asid, vpn });
        }
        None
    }

    /// Tells the plan how an executed event went; keeps the report in
    /// one place without the plan needing OS access.
    pub fn record_remap(&mut self, ok: bool) {
        if ok {
            self.report.remaps += 1;
        } else {
            self.report.remaps_failed += 1;
        }
    }

    /// See [`InjectReport::splinters`] /
    /// [`InjectReport::splinters_failed`].
    pub fn record_splinter(&mut self, ok: bool) {
        if ok {
            self.report.splinters += 1;
        } else {
            self.report.splinters_failed += 1;
        }
    }

    /// See [`InjectReport::probes`] / [`InjectReport::probes_skipped`].
    pub fn record_probe(&mut self, delivered: bool) {
        if delivered {
            self.report.probes += 1;
        } else {
            self.report.probes_skipped += 1;
        }
    }

    /// The tally of injected events so far.
    pub fn report(&self) -> InjectReport {
        self.report
    }

    fn pick_hot(&mut self) -> (Asid, Vpn) {
        let i = self.rng.below(self.hot.len() as u64) as usize;
        self.hot[i]
    }

    fn storm(&mut self) -> InjectEvent {
        // One storm targets one address space (a shootdown is an
        // invalidation command for a single ASID).
        let (asid, first) = self.pick_hot();
        let mut vpns = vec![first];
        for _ in 1..self.cfg.storm_pages.max(1) {
            let (a, v) = self.pick_hot();
            if a == asid && !vpns.contains(&v) {
                vpns.push(v);
            }
        }
        self.report.storms += 1;
        self.report.storm_pages += vpns.len() as u64;
        InjectEvent::Shootdown(Shootdown::Pages { asid, vpns })
    }

    /// Captures the plan's full state — RNG position, hot ring, and
    /// report — for checkpointing.
    pub fn snapshot(&self) -> InjectPlanSnapshot {
        InjectPlanSnapshot {
            cfg: self.cfg,
            rng: self.rng.snapshot(),
            hot: self.hot.iter().map(|&(a, v)| (a, v)).collect(),
            hot_next: self.hot_next as u64,
            report: self.report,
        }
    }

    /// Restores state captured by [`InjectPlan::snapshot`]. The RNG
    /// resumes mid-sequence, so the post-restore decision stream is
    /// bit-for-bit the continuation of the snapshotted one.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's configuration does not match.
    pub fn restore(&mut self, snap: &InjectPlanSnapshot) {
        assert_eq!(self.cfg, snap.cfg, "inject plan snapshot config mismatch");
        self.rng = SimRng::from_snapshot(snap.rng);
        self.hot = snap.hot.clone();
        self.hot_next = snap.hot_next as usize;
        self.report = snap.report;
    }

    fn burst(&mut self) -> InjectEvent {
        let mut targets = Vec::with_capacity(self.cfg.burst_probes.max(1) as usize);
        for _ in 0..self.cfg.burst_probes.max(1) {
            let (asid, vpn) = self.pick_hot();
            let line = self.rng.below(LINES_PER_PAGE) as u32;
            let invalidate = self.rng.below(2) == 0;
            targets.push(ProbeTarget {
                asid,
                vpn,
                line,
                invalidate,
            });
        }
        self.report.probe_bursts += 1;
        InjectEvent::ProbeBurst(targets)
    }
}

/// Full serializable state of an [`InjectPlan`]
/// (see [`InjectPlan::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectPlanSnapshot {
    /// Configuration (validated on restore).
    pub cfg: InjectConfig,
    /// RNG position mid-sequence.
    pub rng: RngSnapshot,
    /// Hot-page ring contents, in storage order.
    pub hot: Vec<(Asid, Vpn)>,
    /// Ring replacement cursor.
    pub hot_next: u64,
    /// Events injected so far.
    pub report: InjectReport,
}

/// Builds an [`InjectPlan`] for a configuration, if injection is
/// enabled and any plan-level rate is nonzero.
pub fn plan_for(cfg: &SystemConfig) -> Option<InjectPlan> {
    let ic = cfg.inject?;
    let plan_rates = ic.storm_ppm | ic.probe_ppm | ic.pressure_ppm | ic.remap_ppm | ic.splinter_ppm;
    (plan_rates > 0).then(|| InjectPlan::new(ic))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_plan(cfg: InjectConfig) -> InjectPlan {
        let mut p = InjectPlan::new(cfg);
        for i in 0..8 {
            p.observe(Asid(0), Vpn::new(0x100 + i));
        }
        p
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let cfg = InjectConfig::uniform(200_000, 7);
        let mut a = hot_plan(cfg);
        let mut b = hot_plan(cfg);
        for _ in 0..4096 {
            assert_eq!(a.poll(), b.poll());
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = hot_plan(InjectConfig::uniform(200_000, 1));
        let mut b = hot_plan(InjectConfig::uniform(200_000, 2));
        let diverged = (0..4096).any(|_| a.poll() != b.poll());
        assert!(diverged, "seed does not reach the plan");
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut p = hot_plan(InjectConfig::uniform(0, 42));
        for _ in 0..4096 {
            assert_eq!(p.poll(), None);
        }
        assert_eq!(p.report(), InjectReport::default());
    }

    #[test]
    fn empty_hot_ring_fires_nothing() {
        let mut p = InjectPlan::new(InjectConfig::uniform(PPM as u32, 42));
        assert_eq!(p.poll(), None);
    }

    #[test]
    fn all_event_classes_fire_at_high_rate() {
        let mut p = hot_plan(InjectConfig::uniform(250_000, 3));
        for _ in 0..4096 {
            p.poll();
        }
        let r = p.report();
        assert!(r.storms > 0, "no storms: {r:?}");
        assert!(r.probe_bursts > 0, "no probe bursts: {r:?}");
        assert!(r.pressure_windows > 0, "no pressure windows: {r:?}");
    }

    #[test]
    fn storms_target_one_asid_without_duplicates() {
        let mut p = InjectPlan::new(InjectConfig::uniform(PPM as u32, 11));
        for i in 0..4 {
            p.observe(Asid(0), Vpn::new(0x10 + i));
            p.observe(Asid(1), Vpn::new(0x90 + i));
        }
        for _ in 0..256 {
            if let Some(InjectEvent::Shootdown(Shootdown::Pages { asid, vpns })) = p.poll() {
                let mut uniq = vpns.clone();
                uniq.dedup();
                assert_eq!(uniq.len(), vpns.len(), "duplicate vpns in storm");
                let base = if asid == Asid(0) { 0x10 } else { 0x90 };
                for v in &vpns {
                    assert!((base..base + 4).contains(&v.raw()), "cross-asid storm");
                }
            }
        }
    }

    #[test]
    fn splinters_fire_only_when_opted_in() {
        let mut off = hot_plan(InjectConfig::uniform(150_000, 3));
        let mut on = hot_plan(InjectConfig::uniform(150_000, 3).with_splinter(250_000));
        let mut fired = false;
        for _ in 0..4096 {
            off.poll();
            if let Some(InjectEvent::Splinter { asid, vpn }) = on.poll() {
                fired = true;
                assert_eq!(asid, Asid(0));
                assert!((0x100..0x108).contains(&vpn.raw()), "target not hot");
            }
        }
        assert!(fired, "splinter rate never fired");
        let legacy = off.report();
        assert!(legacy.storms > 0 && legacy.probe_bursts > 0);
    }

    #[test]
    fn hot_ring_is_bounded() {
        let mut p = InjectPlan::new(InjectConfig::uniform(1, 0));
        for i in 0..1000 {
            p.observe(Asid(0), Vpn::new(i));
        }
        assert!(p.hot.len() <= HOT_RING);
    }

    #[test]
    fn snapshot_restore_continues_the_decision_stream() {
        let cfg = InjectConfig::uniform(200_000, 13);
        let mut a = hot_plan(cfg);
        let mut b = hot_plan(cfg);
        for _ in 0..100 {
            a.poll();
            b.poll();
        }
        let snap = a.snapshot();
        let mut c = InjectPlan::new(cfg);
        c.restore(&snap);
        assert_eq!(c.snapshot(), snap, "restore is a fixed point");
        for i in 0..1000 {
            assert_eq!(b.poll(), c.poll(), "decision {i} diverged");
        }
        assert_eq!(b.report(), c.report());
    }

    #[test]
    fn plan_and_walker_seeds_differ() {
        let cfg = InjectConfig::uniform(100, 9);
        assert_ne!(cfg.plan_seed(), cfg.walker_seed());
    }
}
